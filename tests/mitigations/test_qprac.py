"""QPRAC: proactive priority-queue PRAC service."""

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import many_sided, single_sided
from repro.mitigations.prac import PRACMoatPolicy
from repro.mitigations.qprac import QPRACPolicy

GEO = dict(banks=4, rows=512, refresh_groups=32)
ATTACK_GEO = dict(banks=4, rows=1024, refresh_groups=64)


def hammer(policy, bank, row, times, start=0):
    for i in range(times):
        policy.on_activate(bank, row, start + i)
        policy.on_precharge(bank, row, start + i, counter_update=True)


class TestQueueing:
    def test_hot_row_enqueued_at_eth(self):
        policy = QPRACPolicy(500, **GEO)
        hammer(policy, 0, 10, policy.eth)
        assert policy.queue_occupancy(0) == 1

    def test_cold_row_not_enqueued(self):
        policy = QPRACPolicy(500, **GEO)
        hammer(policy, 0, 10, 5)
        assert policy.queue_occupancy(0) == 0

    def test_queue_bounded(self):
        policy = QPRACPolicy(500, **GEO, queue_size=2)
        for row in range(10, 16):
            hammer(policy, 0, row, policy.eth)
        assert policy.queue_occupancy(0) == 2

    def test_no_duplicate_entries(self):
        policy = QPRACPolicy(500, **GEO)
        hammer(policy, 0, 10, policy.eth * 2)
        assert policy.queue_occupancy(0) == 1


class TestProactiveService:
    def test_ref_mitigates_hottest(self):
        policy = QPRACPolicy(500, **GEO)
        hammer(policy, 0, 10, policy.eth)
        hammer(policy, 0, 20, policy.eth + 50, start=10_000)
        policy.on_refresh(1_000_000)
        events = policy.drain_mitigations()
        assert (0, 20) in {(e.bank, e.row) for e in events}
        assert policy.counter_value(0, 20) == 0
        assert policy.proactive_mitigations == 1

    def test_queue_drains_over_refs(self):
        policy = QPRACPolicy(500, **GEO)
        for row in (10, 20, 30):
            hammer(policy, 0, row, policy.eth, start=row * 1000)
        for _ in range(3):
            policy.on_refresh(0)
        assert policy.queue_occupancy(0) == 0

    def test_alert_backstop_at_ath(self):
        policy = QPRACPolicy(500, **GEO, queue_size=1)
        hammer(policy, 0, 10, policy.eth)  # fills the queue
        hammer(policy, 0, 20, policy.ath, start=10_000)  # can't enqueue
        assert policy.alert_requested()
        policy.on_rfm(1)
        events = policy.drain_mitigations()
        assert (0, 20) in {(e.bank, e.row) for e in events}


class TestSecurity:
    def test_single_sided_holds(self):
        policy = QPRACPolicy(500, **ATTACK_GEO)
        result = run_attack(policy, single_sided(0, 100), 200_000,
                            trh=500, **ATTACK_GEO)
        assert not result.attack_succeeded

    def test_many_sided_holds(self):
        policy = QPRACPolicy(500, **ATTACK_GEO)
        result = run_attack(policy, many_sided(0, range(100, 124)),
                            200_000, trh=500, **ATTACK_GEO)
        assert not result.attack_succeeded

    def test_fewer_alerts_than_moat(self):
        """Proactive REF service keeps ABO nearly idle."""
        qprac = QPRACPolicy(500, **ATTACK_GEO)
        moat = PRACMoatPolicy(500, **ATTACK_GEO)
        r_q = run_attack(qprac, single_sided(0, 100), 200_000, trh=500,
                         **ATTACK_GEO)
        r_m = run_attack(moat, single_sided(0, 100), 200_000, trh=500,
                         **ATTACK_GEO)
        assert r_q.alerts < r_m.alerts


class TestValidation:
    def test_bad_trh(self):
        with pytest.raises(ValueError):
            QPRACPolicy(0, **GEO)

    def test_bad_queue(self):
        with pytest.raises(ValueError):
            QPRACPolicy(500, **GEO, queue_size=0)
