"""Mitigation security telemetry: drift, disturbance, cadence, rates."""

import pytest

from repro.mitigations.base import PolicyStats
from repro.mitigations.prac import PRACMoatPolicy
from repro.mitigations.prac_state import BLAST_RADIUS
from repro.mitigations.security import SecurityTelemetry

GEO = dict(banks=2, rows=64)


class TestShadowTruth:
    def test_activations_accumulate(self):
        telemetry = SecurityTelemetry(**GEO)
        for _ in range(5):
            telemetry.on_activate(0, 10)
        assert telemetry.true_count(0, 10) == 5
        assert telemetry.true_count(1, 10) == 0

    def test_refresh_range_clears_and_records_peak(self):
        telemetry = SecurityTelemetry(**GEO)
        for _ in range(7):
            telemetry.on_activate(0, 3)
        telemetry.on_refresh_range(0, 0, 8)
        assert telemetry.true_count(0, 3) == 0
        assert telemetry.max_disturbance(0) == 7

    def test_mitigation_resets_aggressor_and_bumps_victims(self):
        telemetry = SecurityTelemetry(**GEO)
        for _ in range(9):
            telemetry.on_activate(0, 10)
        telemetry.on_mitigation(0, 10)
        assert telemetry.true_count(0, 10) == 0
        for offset in range(1, BLAST_RADIUS + 1):
            assert telemetry.true_count(0, 10 - offset) == 1
            assert telemetry.true_count(0, 10 + offset) == 1
        assert telemetry.max_disturbance(0) == 9

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            SecurityTelemetry(banks=0, rows=8)
        with pytest.raises(ValueError):
            SecurityTelemetry(banks=1, rows=0)


class TestDrift:
    def test_exact_estimate_has_zero_drift(self):
        telemetry = SecurityTelemetry(**GEO)
        for n in range(1, 6):
            telemetry.on_activate(0, 2)
            telemetry.on_counter_update(0, 2, n)
        assert telemetry.drift_max == 0
        assert telemetry.drift_total == 0

    def test_drift_measures_estimate_gap(self):
        telemetry = SecurityTelemetry(**GEO)
        for _ in range(8):
            telemetry.on_activate(0, 2)
        telemetry.on_counter_update(0, 2, 5)  # estimate lags by 3
        telemetry.on_counter_update(0, 2, 10)  # overshoots by 2
        assert telemetry.drift_max == 3
        assert telemetry.drift_total == 5
        assert telemetry.drift.count == 2


class TestCadenceAndRates:
    def test_rfm_cadence_gaps(self):
        telemetry = SecurityTelemetry(**GEO)
        telemetry.on_rfm(100)
        telemetry.on_rfm(350)
        assert telemetry.cadence.count == 2
        # gaps: 100 (from zero) and 250
        assert telemetry.cadence.total == 350

    def test_as_dict_rates_and_gauges(self):
        telemetry = SecurityTelemetry(**GEO)
        for _ in range(4):
            telemetry.on_activate(0, 1)
        telemetry.on_counter_update(0, 1, 4)
        stats = PolicyStats(activations=4, counter_updates=1,
                            srq_insertions=2)
        doc = telemetry.as_dict(stats)
        assert doc["precu_rate"] == 0.25
        assert doc["srq_insertion_rate"] == 0.5
        assert doc["max_disturbance"] == 4
        assert doc["bank"]["0"]["max_disturbance"] == 4
        assert doc["bank"]["1"]["max_disturbance"] == 0


class TestPolicyIntegration:
    def test_prac_policy_publishes_security_stats(self):
        policy = PRACMoatPolicy(500, banks=2, rows=64, refresh_groups=8)
        for _ in range(6):
            decision = policy.on_activate(0, 9, 0)
            policy.on_precharge(0, 9, 0, decision.counter_update)
        from repro.obs.registry import StatsRegistry
        registry = StatsRegistry()
        policy.register_stats(registry, "mitigation.0")
        snap = registry.snapshot()
        assert snap["mitigation.0.security.drift_max"] == 0
        assert snap["mitigation.0.security.drift_total"] == 0
        assert snap["mitigation.0.security.max_disturbance"] == 6
        assert snap["mitigation.0.security.precu_rate"] == 1.0

    def test_baseline_policy_has_no_security_family(self):
        from repro.mitigations.prac import BaselinePolicy
        from repro.obs.registry import StatsRegistry
        policy = BaselinePolicy()
        registry = StatsRegistry()
        policy.register_stats(registry, "mitigation.0")
        assert not any(".security." in key
                       for key in registry.snapshot())
