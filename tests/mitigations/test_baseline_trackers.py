"""MINT, PrIDE and TRR baseline trackers."""

import random

import pytest

from repro.mitigations.mint import MINTPolicy
from repro.mitigations.pride import PrIDEPolicy
from repro.mitigations.trr import TRRPolicy


class TestMINT:
    def test_one_mitigation_per_ref_when_active(self):
        policy = MINTPolicy(banks=2, window=8, rng=random.Random(0))
        for i in range(16):
            policy.on_activate(0, 42, i)
        policy.on_refresh(1000)
        events = policy.drain_mitigations()
        assert [(e.bank, e.row) for e in events] == [(0, 42)]

    def test_refs_per_mitigation_gates_rate(self):
        policy = MINTPolicy(banks=1, window=4, refs_per_mitigation=2,
                            rng=random.Random(0))
        for i in range(8):
            policy.on_activate(0, 7, i)
        policy.on_refresh(1)
        assert not policy.drain_mitigations()
        policy.on_refresh(2)
        assert policy.drain_mitigations()

    def test_new_selection_replaces_pending(self):
        policy = MINTPolicy(banks=1, window=2, rng=random.Random(0))
        for i in range(2):
            policy.on_activate(0, 11, i)
        for i in range(2):
            policy.on_activate(0, 22, i)
        policy.on_refresh(1)
        events = policy.drain_mitigations()
        assert events[0].row == 22

    def test_never_alerts(self):
        policy = MINTPolicy(banks=1, window=4)
        for i in range(100):
            policy.on_activate(0, 7, i)
        assert not policy.alert_requested()

    def test_bad_refs_per_mitigation(self):
        with pytest.raises(ValueError):
            MINTPolicy(refs_per_mitigation=0)


class TestPrIDE:
    def test_samples_at_bernoulli_rate(self):
        policy = PrIDEPolicy(banks=1, window=10, queue_size=10**6,
                             rng=random.Random(1))
        n = 20_000
        for i in range(n):
            policy.on_activate(0, i, i)
        queued = len(policy.queues[0])
        assert queued == pytest.approx(n / 10, rel=0.15)

    def test_fifo_drops_when_full(self):
        policy = PrIDEPolicy(banks=1, window=2, queue_size=2,
                             rng=random.Random(1))
        for i in range(100):
            policy.on_activate(0, i, i)
        assert len(policy.queues[0]) == 2
        assert policy.dropped_samples > 0

    def test_ref_pops_head(self):
        policy = PrIDEPolicy(banks=1, window=1, queue_size=2,
                             rng=random.Random(1))
        policy.on_activate(0, 5, 0)
        policy.on_activate(0, 6, 1)
        policy.on_refresh(10)
        events = policy.drain_mitigations()
        assert events[0].row == 5
        assert list(policy.queues[0]) == [6]

    def test_bad_queue_size(self):
        with pytest.raises(ValueError):
            PrIDEPolicy(queue_size=0)


class TestTRR:
    def test_tracks_heavy_hitter(self):
        policy = TRRPolicy(banks=1, entries=4, mitigation_threshold=10,
                           refs_per_mitigation=1)
        for i in range(50):
            policy.on_activate(0, 42, i)
        policy.on_refresh(1)
        events = policy.drain_mitigations()
        assert events and events[0].row == 42

    def test_below_threshold_not_mitigated(self):
        policy = TRRPolicy(banks=1, entries=4, mitigation_threshold=100)
        for i in range(5):
            policy.on_activate(0, 42, i)
        policy.on_refresh(1)
        policy.on_refresh(2)
        policy.on_refresh(3)
        policy.on_refresh(4)
        assert not policy.drain_mitigations()

    def test_misra_gries_eviction(self):
        """More aggressors than entries decays all counters — the
        structural weakness TRRespass exploits."""
        policy = TRRPolicy(banks=1, entries=4)
        for sweep in range(10):
            for row in range(8):  # 8 rows > 4 entries
                policy.on_activate(0, row, sweep * 8 + row)
        table = policy.tracked_rows(0)
        assert all(count <= 3 for count in table.values())

    def test_mitigated_entry_removed(self):
        policy = TRRPolicy(banks=1, entries=4, mitigation_threshold=5,
                           refs_per_mitigation=1)
        for i in range(20):
            policy.on_activate(0, 42, i)
        policy.on_refresh(1)
        policy.drain_mitigations()
        assert 42 not in policy.tracked_rows(0)

    def test_bad_entries(self):
        with pytest.raises(ValueError):
            TRRPolicy(entries=0)
