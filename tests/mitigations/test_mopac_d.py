"""MoPAC-D: MINT sampler, SRQ, tardiness, drains, NUP, multi-chip."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import ddr5_base
from repro.mitigations.mopac_d import (MintSampler, MoPACDPolicy,
                                       SRQ_DRAIN_PER_ABO)

GEO = dict(banks=4, rows=512, refresh_groups=32)


def make_policy(trh=500, seed=0, **kw):
    return MoPACDPolicy(trh, rng=random.Random(seed), **GEO, **kw)


class TestMintSampler:
    def test_exactly_one_selection_per_window(self):
        sampler = MintSampler(8, random.Random(0))
        selections = 0
        for window in range(100):
            for i in range(8):
                if sampler.observe(i) is not None:
                    selections += 1
        assert selections == 100

    def test_selection_only_at_window_end(self):
        """Footnote 6: the selected entry is inserted only at the end of
        the MINT window."""
        sampler = MintSampler(8, random.Random(0))
        for i in range(7):
            assert sampler.observe(i) is None
        assert sampler.observe(7) is not None

    def test_uniform_slot_distribution(self):
        sampler = MintSampler(4, random.Random(7))
        counts = [0] * 4
        for _ in range(4000):
            for slot in range(4):
                selected = sampler.observe(slot)
                if selected is not None:
                    counts[selected] += 1
        for count in counts:
            assert count == pytest.approx(1000, rel=0.15)

    def test_window_one_selects_everything(self):
        sampler = MintSampler(1, random.Random(0))
        assert all(sampler.observe(i) == i for i in range(10))

    def test_bad_window(self):
        with pytest.raises(ValueError):
            MintSampler(0, random.Random(0))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 64), st.integers(0, 2**16))
    def test_property_one_per_window(self, window, seed):
        sampler = MintSampler(window, random.Random(seed))
        hits = sum(sampler.observe(i) is not None
                   for i in range(window * 5))
        assert hits == 5


class TestSRQ:
    def test_insertion_after_window(self):
        policy = make_policy(500)  # p = 1/8
        for i in range(8):
            policy.on_activate(0, 42, i)
        assert policy.buffered_rows(0) == [42]
        assert policy.stats.srq_insertions == 1

    def test_coalescing_increments_sctr(self):
        policy = make_policy(500)
        for i in range(16):
            policy.on_activate(0, 42, i)
        chip = policy.chips[0]
        assert len(chip.srqs[0]) == 1
        assert chip.srqs[0][42].sctr == 2

    def test_actr_counts_buffered_activations(self):
        policy = make_policy(500)
        for i in range(8):
            policy.on_activate(0, 42, i)
        entry = policy.chips[0].srqs[0][42]
        before = entry.actr
        policy.on_activate(0, 42, 100)
        assert entry.actr == before + 1

    def test_srq_full_asserts_alert(self):
        policy = make_policy(500, drain_on_ref=0)
        # 16 distinct rows * 8 acts each fills the 16-entry SRQ
        act = 0
        for row in range(16):
            for _ in range(8):
                policy.on_activate(0, 100 + row, act)
                act += 1
        assert "srq_full" in policy.alert_causes
        assert policy.alert_requested()

    def test_srq_size_floor(self):
        with pytest.raises(ValueError):
            make_policy(500, srq_size=SRQ_DRAIN_PER_ABO - 1)


class TestTardiness:
    def test_tth_trips_alert(self):
        policy = make_policy(500, tth=32)
        for i in range(8):  # insert row 42
            policy.on_activate(0, 42, i)
        for i in range(40):  # hammer it while buffered
            policy.on_activate(0, 42, 100 + i)
        assert "tardiness" in policy.alert_causes

    def test_below_tth_quiet(self):
        policy = make_policy(500, tth=32)
        for i in range(8):
            policy.on_activate(0, 42, i)
        for i in range(10):
            policy.on_activate(0, 42, 100 + i)
        assert "tardiness" not in policy.alert_causes


class TestDrains:
    def fill(self, policy, rows, acts_each=8):
        act = 0
        for row in rows:
            for _ in range(acts_each):
                policy.on_activate(0, row, act)
                act += 1

    def test_rfm_drains_five(self):
        policy = make_policy(500, drain_on_ref=0)
        self.fill(policy, range(100, 116))
        policy.on_rfm(10_000)
        assert policy.srq_occupancy(0) == 16 - SRQ_DRAIN_PER_ABO

    def test_drain_increments_counter_by_1_plus_sctr_over_p(self):
        policy = make_policy(500, drain_on_ref=0)
        for i in range(16):  # row selected twice -> SCtr = 2
            policy.on_activate(0, 42, i)
        policy.on_rfm(10_000)
        # increment = 1 + SCtr / p = 1 + 2 * 8 = 17
        assert policy.counter_value(0, 42) == 17

    def test_drain_priority_highest_actr_first(self):
        policy = make_policy(500, drain_on_ref=0, srq_size=8)
        self.fill(policy, range(100, 107))
        # hammer row 103 so it has the highest ACtr
        for i in range(20):
            policy.on_activate(0, 103, 10_000 + i)
        policy.on_rfm(20_000)
        assert 103 not in policy.buffered_rows(0)

    def test_drain_on_ref_rate(self):
        policy = make_policy(500, drain_on_ref=2)
        self.fill(policy, range(100, 110))
        occupancy = policy.srq_occupancy(0)
        policy.on_refresh(50_000)
        assert policy.srq_occupancy(0) == occupancy - 2
        assert policy.stats.ref_drains == 2

    def test_default_drain_rate_from_table8(self):
        assert make_policy(250).drain_on_ref == 4
        assert make_policy(500).drain_on_ref == 2
        assert make_policy(1000).drain_on_ref == 1

    def test_mitigation_when_counter_crosses_ath_star(self):
        policy = make_policy(500, drain_on_ref=0)
        # One coalesced entry with enough SCtr to cross ATH* = 152.
        for i in range(8 * 20):  # SCtr = 20 -> increment 161
            policy.on_activate(0, 42, i)
        policy.on_rfm(10_000)
        assert "mitigation" in policy.alert_causes
        policy.on_activate(0, 7, 99_999)  # inter-ALERT activation
        policy.on_rfm(20_000)
        events = policy.drain_mitigations()
        assert (0, 42) in {(e.bank, e.row) for e in events}


class TestTimings:
    def test_mc_visible_timing_is_baseline(self):
        policy = make_policy(500)
        decision = policy.on_activate(0, 1, 0)
        assert decision.act_timing.tRP == ddr5_base().tRP
        assert not decision.counter_update


class TestNUP:
    def test_nup_roughly_halves_insertions_for_cold_rows(self):
        uniform = make_policy(500, seed=3)
        nup = make_policy(500, nup=True, seed=3)
        act = 0
        for sweep in range(60):
            for row in range(200):  # wide sweep: counters stay ~0
                uniform.on_activate(0, row, act)
                nup.on_activate(0, row, act)
                act += 1
        ratio = nup.stats.srq_insertions / uniform.stats.srq_insertions
        assert ratio == pytest.approx(0.5, abs=0.15)

    def test_nup_uses_table11_ath_star(self):
        assert make_policy(500, nup=True).ath_star == 136
        assert make_policy(1000, nup=True).ath_star == 288

    def test_uniform_uses_table8_ath_star(self):
        assert make_policy(500).ath_star == 152


class TestMultiChip:
    def test_chips_have_independent_state(self):
        policy = make_policy(500, chips=4)
        for i in range(64):
            policy.on_activate(0, 42, i)
        occupancies = [len(chip.srqs[0]) for chip in policy.chips]
        assert len(occupancies) == 4

    def test_counter_value_is_max_over_chips(self):
        policy = make_policy(500, chips=2)
        policy.chips[0].prac.update(0, 5, 10)
        policy.chips[1].prac.update(0, 5, 30)
        assert policy.counter_value(0, 5) == 30

    def test_more_chips_more_insertions(self):
        few = make_policy(500, chips=1, seed=9)
        many = make_policy(500, chips=4, seed=9)
        for i in range(4000):
            few.on_activate(0, i % 300, i)
            many.on_activate(0, i % 300, i)
        assert many.stats.srq_insertions > few.stats.srq_insertions

    def test_bad_chips(self):
        with pytest.raises(ValueError):
            make_policy(500, chips=0)


class TestValidation:
    def test_bad_trh(self):
        with pytest.raises(ValueError):
            make_policy(trh=0)
