"""Property-based invariants of MoPAC-D under random operation streams."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.mopac_d import MoPACDPolicy

GEO = dict(banks=2, rows=128, refresh_groups=8)


def driven_policy(ops, trh=500, **kw):
    """Drive a policy with a random op stream; returns the policy."""
    policy = MoPACDPolicy(trh, **GEO, rng=random.Random(9), **kw)
    now = 0
    for op, value in ops:
        now += 46_000
        if op == "act":
            policy.on_activate(value % 2, value % 128, now)
        elif op == "ref":
            policy.on_refresh(now)
        elif op == "rfm" and policy.alert_requested():
            policy.on_rfm(now)
    return policy


op_stream = st.lists(
    st.tuples(st.sampled_from(["act", "act", "act", "ref", "rfm"]),
              st.integers(0, 400)),
    min_size=1, max_size=400)


@settings(max_examples=40, deadline=None)
@given(op_stream)
def test_srq_never_exceeds_capacity(ops):
    policy = driven_policy(ops, drain_on_ref=0)
    for chip in policy.chips:
        for srq in chip.srqs:
            assert len(srq) <= chip.srq_size


@settings(max_examples=40, deadline=None)
@given(op_stream)
def test_entry_counters_non_negative(ops):
    policy = driven_policy(ops)
    for chip in policy.chips:
        for srq in chip.srqs:
            for entry in srq.values():
                assert entry.actr >= 0
                assert entry.sctr >= 1


@settings(max_examples=40, deadline=None)
@given(op_stream)
def test_counters_never_negative(ops):
    policy = driven_policy(ops)
    for chip in policy.chips:
        for bank in range(chip.prac.banks):
            assert chip.prac.counters[bank].min() >= 0


@settings(max_examples=40, deadline=None)
@given(op_stream)
def test_insertions_bounded_by_windows(ops):
    """MINT inserts at most one entry per 1/p activations per bank/chip."""
    policy = driven_policy(ops)
    acts = policy.stats.activations
    upper = (acts // policy.inv_p + 2 * GEO["banks"]) * len(policy.chips)
    assert policy.stats.srq_insertions <= upper


@settings(max_examples=30, deadline=None)
@given(op_stream, st.integers(1, 3))
def test_chips_scale_insertions(ops, chips):
    single = driven_policy(ops, chips=1)
    multi = driven_policy(ops, chips=chips)
    # per-chip sampling is independent but identically paced
    assert multi.stats.srq_insertions <= chips * (
        single.stats.srq_insertions + 2 * GEO["banks"])


@settings(max_examples=40, deadline=None)
@given(op_stream)
def test_alert_causes_subset(ops):
    policy = driven_policy(ops, drain_on_ref=0)
    assert policy.alert_causes <= {"mitigation", "srq_full", "tardiness"}
