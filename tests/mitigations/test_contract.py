"""Shared mitigation contract suite, parametrized over the registry.

Every design registered in :mod:`repro.mitigations.registry` is held to
the contract its spec declares, with no per-design test code:

* **registry shape** — the factory builds a policy whose ``name``
  matches, descriptions and knob docs exist, ``effective_trh`` never
  weakens the threshold;
* **differential invariants** — on one seeded adversarial stream the
  security ledger stays clean (secure designs), exact designs conserve
  counters against the exact-PRAC shadow with identically-zero
  telemetry drift, sampled designs stay within the drift bound;
* **seed-replay determinism** — the same ``(seed, stream)`` reproduces
  the same run bit-for-bit, twice;
* **engine bit-identity** — the fast engine produces the same stats and
  the same traced command stream as the reference event loop;
* **forced recovery paths** — the ALERT/RFM backstops that benign
  streams rarely reach (QPRAC's queue overflow, PRACtical's bank-scoped
  recovery through the real memory controller + conformance oracle).
"""

import dataclasses
import heapq

import pytest

from repro.attacks.harness import AttackHarness
from repro.check.differential import run_differential
from repro.check.oracle import ConformanceOracle, OracleConfig
from repro.config import DRAMConfig
from repro.dram.commands import BankAddress, LineAddress
from repro.mc.controller import MemoryController
from repro.mc.pagepolicy import make_page_policy
from repro.mc.request import MemRequest
from repro.mitigations import registry
from repro.mitigations.practical import PRACticalPolicy
from repro.obs.tracer import EventTracer
from repro.sim.runner import DesignPoint, run_point

DESIGNS = registry.names()

#: one differential run shared by the invariant tests (module-import
#: cost, not per-test) — small but adversarial enough to mitigate
DIFF = run_differential(trh=250, activations=12_000, banks=4, rows=256,
                        refresh_groups=64, seed=0xD1FF)
OUTCOMES = {o.design: o for o in DIFF.outcomes}


def _spec(design):
    return registry.get(design)


# ---------------------------------------------------------------------------
# Registry shape
# ---------------------------------------------------------------------------
class TestRegistryShape:
    def test_registry_is_nonempty_and_unique(self):
        assert len(DESIGNS) == len(set(DESIGNS)) >= 11

    @pytest.mark.parametrize("design", DESIGNS)
    def test_factory_builds_named_policy(self, design):
        policy = registry.make_policy(design, 250, banks=2, rows=64,
                                      refresh_groups=32, seed=1)
        assert policy.name == design

    @pytest.mark.parametrize("design", DESIGNS)
    def test_spec_documents_itself(self, design):
        spec = _spec(design)
        assert spec.description
        assert spec.knobs, f"{design} has no knob documentation"
        assert all(name and meaning for name, meaning in spec.knobs)

    @pytest.mark.parametrize("design", DESIGNS)
    def test_effective_trh_never_weakens(self, design):
        spec = _spec(design)
        for trh in (100, 250, 500, 10_000):
            assert spec.effective_trh(trh) >= trh

    @pytest.mark.parametrize("design", DESIGNS)
    def test_timing_class_is_known(self, design):
        assert _spec(design).timing in ("base", "prac", "dual")

    def test_unknown_design_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered:"):
            registry.get("nope")


# ---------------------------------------------------------------------------
# Differential invariants (one shared adversarial stream)
# ---------------------------------------------------------------------------
class TestDifferentialInvariants:
    def test_report_is_clean(self):
        assert DIFF.ok, DIFF.describe()

    def test_every_design_ran(self):
        assert set(OUTCOMES) == set(DESIGNS)

    def test_all_designs_saw_the_same_stream(self):
        totals = {o.total_activations for o in DIFF.outcomes}
        assert len(totals) == 1

    @pytest.mark.parametrize("design", DESIGNS)
    def test_security_ledger_verdict(self, design):
        outcome = OUTCOMES[design]
        if _spec(design).secure:
            assert not outcome.attack_succeeded, (
                f"{design} let a row reach {outcome.max_count} > "
                f"{outcome.effective_trh}")

    @pytest.mark.parametrize(
        "design", [d for d in DESIGNS if registry.get(d).exact])
    def test_exact_designs_conserve_counters(self, design):
        outcome = OUTCOMES[design]
        assert not outcome.counter_mismatches
        assert outcome.stats_conserved
        assert outcome.drift_max == 0 and outcome.drift_total == 0

    @pytest.mark.parametrize(
        "design",
        [d for d in DESIGNS
         if registry.get(d).counting and not registry.get(d).exact])
    def test_sampled_designs_stay_within_drift_bound(self, design):
        outcome = OUTCOMES[design]
        assert 0 < outcome.drift_max <= DIFF.trh

    @pytest.mark.parametrize("design", DESIGNS)
    def test_designs_actually_mitigate(self, design):
        # a design that never services anything is vacuously "clean"
        assert OUTCOMES[design].mitigations > 0


# ---------------------------------------------------------------------------
# Seed-replay determinism
# ---------------------------------------------------------------------------
def _harness_fingerprint(design, seed):
    from repro.check.differential import make_targets
    spec = _spec(design)
    policy = spec.build(250, banks=2, rows=128, refresh_groups=32,
                        seed=seed)
    harness = AttackHarness(policy, spec.effective_trh(250), 2, 128, 32)
    targets = make_targets(seed, 2, 128, 2_500)
    result = harness.run(iter(targets), 2_500)
    return (result.ledger.max_count, result.elapsed_ps, result.alerts,
            dict(policy.stats.__dict__))


class TestSeedReplayDeterminism:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_same_seed_same_run(self, design):
        assert _harness_fingerprint(design, 7) \
            == _harness_fingerprint(design, 7)


# ---------------------------------------------------------------------------
# Engine bit-identity
# ---------------------------------------------------------------------------
class TestEngineBitIdentity:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_fast_engine_matches_reference(self, design):
        point = DesignPoint(workload="hammer", design=design, trh=500,
                            instructions=5_000, rows_per_bank=128,
                            refresh_scale=1 / 256, seed=7)
        fingerprints, traces = {}, {}
        for engine in ("reference", "fast"):
            tracer = EventTracer(capacity=500_000)
            result = run_point(point, tracer=tracer, engine=engine)
            fingerprints[engine] = (
                dict(result.stats),
                [dataclasses.asdict(s) for s in result.mc_stats],
                result.elapsed_ps)
            traces[engine] = tracer.events()
        assert fingerprints["fast"] == fingerprints["reference"]
        assert traces["fast"] == traces["reference"]


# ---------------------------------------------------------------------------
# Forced recovery paths
# ---------------------------------------------------------------------------
class TestForcedAlertPaths:
    def test_qprac_alert_backstop_fires_on_queue_overflow(self):
        # a full queue must not suppress the ABO backstop: the row keeps
        # counting to ATH and the ALERT line asserts
        policy = registry.make_policy("qprac", 100, banks=2, rows=64,
                                      refresh_groups=32, seed=1,
                                      queue_size=1)
        # occupy the single queue slot with a decoy row
        for _ in range(policy.eth):
            policy.on_activate(0, 5, 0)
            policy.on_precharge(0, 5, 0, True)
        assert policy.queue_occupancy(0) == 1
        for _ in range(policy.ath):
            policy.on_activate(0, 9, 0)
            policy.on_precharge(0, 9, 0, True)
        assert policy.alert_requested()
        policy.on_rfm(0)
        assert policy.stats.alerts == 1
        assert policy.counter_value(0, 9) == 0  # hottest row serviced
        assert not policy.alert_requested()

    def test_qprac_proactive_opportunistic_slot_is_never_wasted(self):
        policy = registry.make_policy("qprac-proactive", 100, banks=1,
                                      rows=64, refresh_groups=64, seed=1)
        # a few activations, all below ETH: the queue stays empty
        for _ in range(3):
            policy.on_activate(0, 9, 0)
            policy.on_precharge(0, 9, 0, True)
        policy.on_refresh(0, bank=0)
        assert policy.opportunistic_mitigations == 1
        assert policy.counter_value(0, 9) == 0

    def test_practical_bank_scoped_rfm_through_controller(self):
        """Hammer one bank through the real MC; recovery stalls only it.

        The thresholds are lowered so a short paced stream crosses ATH;
        the traced RFMs must name the hammered bank (not the whole
        sub-channel) and the bank-scope-aware conformance oracle must
        accept the stream, including commands other banks issued inside
        the recovery window.
        """
        policy = PRACticalPolicy(trh=100, banks=4, rows=64,
                                 refresh_groups=64, subarrays=4)
        policy.ath, policy.eth = 6, 3
        config = DRAMConfig(banks_per_subchannel=4, rows_per_bank=64)
        heap, counter = [], iter(range(1 << 30))
        controller = MemoryController(
            subchannel=0, config=config, policy=policy,
            scheduler=lambda t, cb: heapq.heappush(
                heap, (t, next(counter), cb)),
            on_complete=lambda r: None,
            page_policy=make_page_policy("close"))
        tracer = EventTracer(capacity=200_000)
        controller.tracer = tracer
        policy.tracer = tracer
        policy.tracer_subchannel = 0
        controller.start()
        # bank 1: a 10-row cycle (past the FR-FCFS window) paced past
        # tRC; bank 3: background traffic that must keep flowing
        for i in range(160):
            bank, row = (1, i % 10) if i % 4 else (3, 20 + i % 3)
            when = 120_000 * (i + 1)
            address = LineAddress(BankAddress(0, bank, row), 0)
            controller.enqueue(MemRequest(core=0, address=address,
                                          arrival_ps=when,
                                          is_write=False), now=when)
        deadline = 140_000 * 170
        while heap:
            time_ps, _, callback = heapq.heappop(heap)
            if time_ps > deadline and not controller._alert_in_flight:
                break
            callback(time_ps)

        events = tracer.events()
        rfms = [e for e in events if e.kind == "RFM"]
        assert rfms, "hammer never reached the lowered ATH"
        assert all(e.bank == 1 for e in rfms), rfms
        assert policy.stats.alerts > 0
        oracle = ConformanceOracle(OracleConfig.from_policy(
            policy, banks=4, refresh_mode="all-bank"))
        assert oracle.verify(events) == []
