"""MoPAC-C: probabilistic PREcu selection at the memory controller."""

import random

import pytest

from repro.dram.timing import ddr5_base, ddr5_prac
from repro.mitigations.mopac_c import MoPACCPolicy

GEO = dict(banks=4, rows=512, refresh_groups=32)


def make_policy(trh=500, seed=0, **kw):
    return MoPACCPolicy(trh, rng=random.Random(seed), **GEO, **kw)


class TestSelection:
    def test_selection_rate_near_p(self):
        policy = make_policy(500)  # p = 1/8
        n = 20_000
        selected = sum(
            policy.on_activate(0, i % 64, i).counter_update
            for i in range(n))
        assert selected / n == pytest.approx(1 / 8, rel=0.1)

    def test_selected_episode_uses_prac_timings(self):
        policy = make_policy(500)
        decisions = [policy.on_activate(0, 1, i) for i in range(200)]
        chosen = [d for d in decisions if d.counter_update]
        skipped = [d for d in decisions if not d.counter_update]
        assert chosen and skipped
        assert all(d.pre_timing.tRP == ddr5_prac().tRP for d in chosen)
        assert all(d.pre_timing.tRP == ddr5_base().tRP for d in skipped)

    def test_policy_base_timing_is_normal(self):
        assert make_policy().timing.tRP == ddr5_base().tRP


class TestCounting:
    def test_update_increments_by_inv_p(self):
        policy = make_policy(500)
        policy.on_precharge(0, 7, 0, counter_update=True)
        assert policy.counter_value(0, 7) == 8

    def test_skip_does_not_count(self):
        policy = make_policy(500)
        policy.on_precharge(0, 7, 0, counter_update=False)
        assert policy.counter_value(0, 7) == 0

    def test_custom_p(self):
        policy = make_policy(500, p=1 / 4)
        assert policy.increment == 4


class TestThresholds:
    @pytest.mark.parametrize("trh,ath_star", [(250, 80), (500, 176),
                                              (1000, 368)])
    def test_ath_star_from_table7(self, trh, ath_star):
        assert make_policy(trh).ath == ath_star

    def test_alert_at_ath_star(self):
        policy = make_policy(500)
        updates_needed = policy.params.critical_updates
        for i in range(updates_needed - 1):
            policy.on_activate(0, 9, i)
            policy.on_precharge(0, 9, i, counter_update=True)
        assert not policy.alert_requested()
        policy.on_activate(0, 9, 99)
        policy.on_precharge(0, 9, 99, counter_update=True)
        assert policy.alert_requested()

    def test_rfm_mitigates(self):
        policy = make_policy(500)
        for i in range(policy.params.critical_updates):
            policy.on_activate(0, 9, i)
            policy.on_precharge(0, 9, i, counter_update=True)
        policy.on_rfm(1000)
        events = policy.drain_mitigations()
        assert (0, 9) in {(e.bank, e.row) for e in events}


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = make_policy(500, seed=42)
        b = make_policy(500, seed=42)
        for i in range(500):
            da = a.on_activate(0, i % 32, i)
            db = b.on_activate(0, i % 32, i)
            assert da.counter_update == db.counter_update

    def test_different_seeds_differ(self):
        a = make_policy(500, seed=1)
        b = make_policy(500, seed=2)
        decisions_a = [a.on_activate(0, 1, i).counter_update
                       for i in range(500)]
        decisions_b = [b.on_activate(0, 1, i).counter_update
                       for i in range(500)]
        assert decisions_a != decisions_b
