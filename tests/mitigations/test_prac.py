"""PRAC + MOAT policy behaviour."""

import pytest

from repro.dram.timing import ddr5_base, ddr5_prac
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy

GEO = dict(banks=4, rows=512, refresh_groups=32)


def make_policy(trh=500):
    return PRACMoatPolicy(trh, **GEO)


class TestEpisodeDecisions:
    def test_every_episode_is_counter_update(self):
        policy = make_policy()
        decision = policy.on_activate(0, 10, 0)
        assert decision.counter_update

    def test_episodes_use_prac_timing(self):
        policy = make_policy()
        decision = policy.on_activate(0, 10, 0)
        assert decision.act_timing.tRP == ddr5_prac().tRP
        assert decision.pre_timing.tRP == ddr5_prac().tRP


class TestCounting:
    def test_precharge_increments_by_one(self):
        policy = make_policy()
        policy.on_activate(0, 10, 0)
        policy.on_precharge(0, 10, 100, counter_update=True)
        assert policy.counter_value(0, 10) == 1

    def test_non_update_precharge_ignored(self):
        policy = make_policy()
        policy.on_precharge(0, 10, 100, counter_update=False)
        assert policy.counter_value(0, 10) == 0

    def test_stats_track_updates(self):
        policy = make_policy()
        for i in range(5):
            policy.on_activate(0, 10, i)
            policy.on_precharge(0, 10, i, counter_update=True)
        assert policy.stats.counter_updates == 5
        assert policy.stats.activations == 5


class TestAlertProtocol:
    def _hammer(self, policy, bank, row, times):
        for i in range(times):
            policy.on_activate(bank, row, i)
            policy.on_precharge(bank, row, i, counter_update=True)

    def test_alert_at_ath(self):
        policy = make_policy(500)
        self._hammer(policy, 0, 10, policy.ath - 1)
        assert not policy.alert_requested()
        self._hammer(policy, 0, 10, 1)
        assert policy.alert_requested()

    def test_ath_matches_table2(self):
        assert make_policy(500).ath == 472
        assert make_policy(1000).ath == 975

    def test_rfm_mitigates_tracked_row(self):
        policy = make_policy(500)
        self._hammer(policy, 0, 10, policy.ath)
        policy.on_rfm(10_000)
        events = policy.drain_mitigations()
        assert any(e.bank == 0 and e.row == 10 for e in events)
        assert policy.counter_value(0, 10) == 0

    def test_rfm_mitigates_all_eligible_banks(self):
        """ABO is sub-channel wide: every bank above ETH mitigates."""
        policy = make_policy(500)
        self._hammer(policy, 0, 10, policy.ath)
        self._hammer(policy, 1, 20, policy.eth)  # eligible, below ATH
        self._hammer(policy, 2, 30, 5)  # not eligible
        policy.on_rfm(10_000)
        rows = {(e.bank, e.row) for e in policy.drain_mitigations()}
        assert (0, 10) in rows
        assert (1, 20) in rows
        assert (2, 30) not in rows

    def test_alert_needs_activation_between_episodes(self):
        policy = make_policy(500)
        self._hammer(policy, 0, 10, policy.ath)
        policy.on_rfm(10_000)
        assert not policy.alert_requested()
        # one more activation re-arms the protocol if a row is still hot
        self._hammer(policy, 0, 11, 1)

    def test_alert_counts_by_cause(self):
        policy = make_policy(500)
        self._hammer(policy, 0, 10, policy.ath)
        policy.on_rfm(10_000)
        assert policy.stats.alerts == 1
        assert policy.stats.alerts_mitigation == 1

    def test_refresh_clears_counters_eventually(self):
        policy = make_policy(500)
        self._hammer(policy, 0, 10, 50)
        for _ in range(32):  # a full refresh round
            policy.on_refresh(0)
        assert policy.counter_value(0, 10) == 0


class TestBaselinePolicy:
    def test_never_alerts(self):
        policy = BaselinePolicy()
        for i in range(1000):
            policy.on_activate(0, 1, i)
        assert not policy.alert_requested()

    def test_uses_base_timing(self):
        policy = BaselinePolicy()
        decision = policy.on_activate(0, 1, 0)
        assert decision.act_timing.tRP == ddr5_base().tRP
        assert not decision.counter_update

    def test_bad_trh_rejected(self):
        with pytest.raises(ValueError):
            PRACMoatPolicy(0, **GEO)
