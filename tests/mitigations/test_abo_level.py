"""JEDEC ABO mitigation levels: multiple RFMs per ALERT."""

import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import srq_fill
from repro.mitigations.mopac_d import MoPACDPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)


class TestConfiguration:
    def test_default_level_one(self):
        assert MoPACDPolicy(500, **GEO).abo_level == 1

    @pytest.mark.parametrize("level", [1, 2, 4])
    def test_jedec_menu(self, level):
        assert MoPACDPolicy(500, **GEO, abo_level=level).abo_level == level

    def test_off_menu_rejected(self):
        with pytest.raises(ValueError, match="abo_level"):
            MoPACDPolicy(500, **GEO, abo_level=3)


class TestDrainBehaviour:
    def fill(self, policy, rows=16):
        act = 0
        for row in range(100, 100 + rows):
            for _ in range(8):
                policy.on_activate(0, row, act)
                act += 1

    def test_level_two_drains_twice_as_much(self):
        low = MoPACDPolicy(500, **GEO, drain_on_ref=0,
                           rng=random.Random(1))
        high = MoPACDPolicy(500, **GEO, drain_on_ref=0, abo_level=2,
                            rng=random.Random(1))
        self.fill(low)
        self.fill(high)
        low.on_rfm(10_000)
        for _ in range(high.abo_level):
            high.on_rfm(10_000)
        assert (16 - high.srq_occupancy(0)) == 2 * (16 - low.srq_occupancy(0))


class TestUnderAttack:
    def _alerts(self, level):
        policy = MoPACDPolicy(500, **GEO, abo_level=level,
                              drain_on_ref=0, rng=random.Random(2))
        result = run_attack(policy, srq_fill(0, 500), 150_000, trh=500,
                            **GEO)
        return result

    def test_higher_level_fewer_alerts(self):
        one = self._alerts(1)
        four = self._alerts(4)
        assert four.alerts < one.alerts

    def test_still_secure_at_all_levels(self):
        for level in (1, 2, 4):
            assert not self._alerts(level).attack_succeeded
