"""Row-Press runtime accounting in MoPAC-D (Appendix A)."""

import random

import pytest

from repro.mitigations.mopac_d import MoPACDPolicy
from repro.units import ns

GEO = dict(banks=4, rows=512, refresh_groups=32)


def make_policy(rowpress_aware=True, **kw):
    return MoPACDPolicy(500, **GEO, rowpress_aware=rowpress_aware,
                        rng=random.Random(0), **kw)


def buffer_row(policy, bank=0, row=42):
    for i in range(8):  # one MINT window at p = 1/8
        policy.on_activate(bank, row, i)
    return policy.chips[0].srqs[bank][row]


class TestSCtrCharging:
    def test_short_open_charges_nothing_extra(self):
        policy = make_policy()
        entry = buffer_row(policy)
        before = entry.sctr
        policy.note_row_open(0, 42, ns(32))  # a normal fast episode
        assert entry.sctr == before

    def test_open_at_cap_charges_nothing_extra(self):
        policy = make_policy()
        entry = buffer_row(policy)
        before = entry.sctr
        policy.note_row_open(0, 42, ns(180))
        assert entry.sctr == before

    @pytest.mark.parametrize("open_ns,extra", [(181, 1), (360, 1),
                                               (361, 2), (900, 4)])
    def test_long_open_charges_ceil(self, open_ns, extra):
        policy = make_policy()
        entry = buffer_row(policy)
        before = entry.sctr
        policy.note_row_open(0, 42, ns(open_ns))
        assert entry.sctr == before + extra

    def test_unbuffered_row_ignored(self):
        policy = make_policy()
        buffer_row(policy, row=42)
        policy.note_row_open(0, 99, ns(900))  # row 99 not in the SRQ
        assert 99 not in policy.chips[0].srqs[0]

    def test_disabled_by_default(self):
        policy = make_policy(rowpress_aware=False)
        entry = buffer_row(policy)
        before = entry.sctr
        policy.note_row_open(0, 42, ns(900))
        assert entry.sctr == before


class TestDamageFlowsToCounter:
    def test_drain_includes_rowpress_damage(self):
        policy = make_policy(drain_on_ref=0)
        buffer_row(policy)
        policy.note_row_open(0, 42, ns(540))  # ceil(540/180) - 1 = 2 extra
        policy.on_rfm(10_000)
        # increment = 1 + SCtr / p = 1 + (1 + 2) * 8 = 25
        assert policy.counter_value(0, 42) == 25
