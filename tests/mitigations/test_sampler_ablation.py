"""Footnote 6 ablation: MINT vs PARA selection for MoPAC-D.

The paper argues PARA-style Bernoulli selection is unsafe for MoPAC-D:
nothing bounds the number of activations between selections, so an
attacker enjoying an unlucky (for the defender) stretch hammers freely,
whereas MINT guarantees exactly one selection per 1/p window.
"""

import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import single_sided
from repro.mitigations.mopac_d import (MintSampler, MoPACDPolicy,
                                       ParaSampler)

GEO = dict(banks=4, rows=1024, refresh_groups=64)


class TestParaSampler:
    def test_bernoulli_rate(self):
        sampler = ParaSampler(8, random.Random(0))
        hits = sum(sampler.observe(1) is not None for _ in range(16_000))
        assert hits == pytest.approx(2000, rel=0.1)

    def test_gaps_are_unbounded(self):
        """The structural weakness: selection gaps exceed the window."""
        sampler = ParaSampler(8, random.Random(0))
        gaps, gap = [], 0
        for _ in range(50_000):
            if sampler.observe(1) is None:
                gap += 1
            else:
                gaps.append(gap)
                gap = 0
        assert max(gaps) > 8 * 4  # far beyond one MINT window

    def test_mint_gaps_are_bounded(self):
        sampler = MintSampler(8, random.Random(0))
        gap, worst = 0, 0
        for _ in range(50_000):
            if sampler.observe(1) is None:
                gap += 1
            else:
                worst = max(worst, gap)
                gap = 0
        # two adjacent windows: selection at the start of one and the
        # end of the next -> at most 2 * window - 1 activations between
        assert worst <= 2 * 8 - 1

    def test_bad_window(self):
        with pytest.raises(ValueError):
            ParaSampler(0, random.Random(0))


class TestPolicyWiring:
    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="sampler"):
            MoPACDPolicy(500, **GEO, sampler="lottery")

    def test_para_policy_runs(self):
        policy = MoPACDPolicy(500, **GEO, sampler="para",
                              rng=random.Random(1))
        for i in range(1000):
            policy.on_activate(0, i % 50, i)
        assert policy.stats.srq_insertions > 0


class TestFootnote6:
    """PARA's worst-case unmitigated run exceeds MINT's."""

    def _max_count(self, sampler: str, seed: int) -> int:
        policy = MoPACDPolicy(500, **GEO, sampler=sampler,
                              rng=random.Random(seed))
        result = run_attack(policy, single_sided(0, 100), 120_000,
                            trh=500, **GEO)
        return result.ledger.max_count

    def test_para_worse_tail_than_mint(self):
        mint_worst = max(self._max_count("mint", s) for s in range(4))
        para_worst = max(self._max_count("para", s) for s in range(4))
        assert para_worst > mint_worst

    def test_mint_still_secure_here(self):
        assert self._max_count("mint", 0) < 500
