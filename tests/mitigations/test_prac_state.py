"""PRAC counters, MOAT tracker, refresh schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations.prac_state import (BLAST_RADIUS, MoatTracker,
                                          PRACCounters, RefreshSchedule)


class TestMoatTracker:
    def test_tracks_maximum(self):
        t = MoatTracker()
        t.observe(5, 10)
        t.observe(7, 3)
        assert t.row == 5
        t.observe(7, 11)
        assert t.row == 7

    def test_first_observation_always_tracked(self):
        t = MoatTracker()
        t.observe(3, 0)
        assert t.valid
        assert t.row == 3

    def test_invalidate(self):
        t = MoatTracker()
        t.observe(5, 10)
        t.invalidate()
        assert not t.valid
        assert t.value == 0


class TestPRACCounters:
    def test_update_increments(self):
        state = PRACCounters(2, 64)
        assert state.update(0, 5, 1) == 1
        assert state.update(0, 5, 3) == 4
        assert state.value(0, 5) == 4

    def test_banks_independent(self):
        state = PRACCounters(2, 64)
        state.update(0, 5, 7)
        assert state.value(1, 5) == 0

    def test_update_feeds_tracker(self):
        state = PRACCounters(1, 64)
        state.update(0, 5, 10)
        state.update(0, 9, 4)
        assert state.tracker(0).row == 5
        assert state.tracker(0).value == 10

    def test_mitigate_resets_and_invalidates(self):
        state = PRACCounters(1, 64)
        state.update(0, 30, 100)
        row = state.mitigate(0)
        assert row == 30
        assert state.value(0, 30) == 0

    def test_mitigate_empty_tracker(self):
        state = PRACCounters(1, 64)
        assert state.mitigate(0) is None

    def test_victim_refresh_increments_neighbours(self):
        """Footnote 5: a victim refresh activates the victim row, so its
        own counter increments by one."""
        state = PRACCounters(1, 64)
        state.update(0, 30, 100)
        state.mitigate(0)
        for offset in range(1, BLAST_RADIUS + 1):
            assert state.value(0, 30 - offset) == 1
            assert state.value(0, 30 + offset) == 1
        assert state.value(0, 30 - BLAST_RADIUS - 1) == 0

    def test_mitigate_at_array_edge(self):
        state = PRACCounters(1, 64)
        state.update(0, 0, 50)
        assert state.mitigate(0) == 0  # must not touch negative rows
        state.update(0, 63, 50)
        assert state.mitigate(0) == 63

    def test_refresh_clears_range(self):
        state = PRACCounters(1, 64)
        state.update(0, 10, 5)
        state.update(0, 20, 7)
        state.refresh_rows(0, 8, 16)
        assert state.value(0, 10) == 0
        assert state.value(0, 20) == 7

    def test_refresh_invalidates_tracked_row_in_range(self):
        state = PRACCounters(1, 64)
        state.update(0, 10, 5)
        state.refresh_rows(0, 8, 16)
        assert not state.tracker(0).valid

    def test_refresh_keeps_tracker_outside_range(self):
        state = PRACCounters(1, 64)
        state.update(0, 30, 5)
        state.refresh_rows(0, 0, 8)
        assert state.tracker(0).valid

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            PRACCounters(0, 64)


class TestRefreshSchedule:
    def test_covers_all_rows_once_per_round(self):
        sched = RefreshSchedule(rows=64, groups=8)
        covered = []
        for _ in range(8):
            start, stop = sched.advance()
            covered.extend(range(start, stop))
        assert sorted(covered) == list(range(64))
        assert sched.rounds == 1

    def test_groups_clamped_to_rows(self):
        sched = RefreshSchedule(rows=4, groups=8192)
        assert sched.groups == 4

    def test_uneven_division(self):
        sched = RefreshSchedule(rows=10, groups=3)
        covered = []
        for _ in range(3):
            start, stop = sched.advance()
            covered.extend(range(start, stop))
        assert sorted(set(covered)) == list(range(10))

    def test_bad_rows(self):
        with pytest.raises(ValueError):
            RefreshSchedule(rows=0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 50))
    def test_rounds_always_cover_everything(self, rows, groups):
        sched = RefreshSchedule(rows=rows, groups=groups)
        covered = set()
        for _ in range(sched.groups):
            start, stop = sched.advance()
            covered.update(range(start, stop))
        assert covered == set(range(rows))
