"""Package-level API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = ("analysis", "attacks", "cpu", "dram", "mc", "mitigations",
               "security", "sim", "tools", "workloads")


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_importable(self, name):
        importlib.import_module(f"repro.{name}")

    def test_version(self):
        assert repro.__version__

    def test_top_level_reexports(self):
        assert repro.DesignPoint is repro.sim.DesignPoint
        assert repro.SystemConfig is repro.config.SystemConfig


@pytest.mark.parametrize("module_name", [
    "repro", "repro.security", "repro.mitigations", "repro.attacks",
    "repro.sim", "repro.dram", "repro.mc", "repro.cpu", "repro.workloads",
    "repro.analysis",
])
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_quickstart_docstring_example():
    from repro import security
    params = security.mopac_c_params(trh=500)
    assert (params.p, params.critical_updates, params.ath_star) == \
        (0.125, 22, 176)
