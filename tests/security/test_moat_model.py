"""MOAT ATH model: Table 2 anchors and the fitted slack."""

import pytest

from repro.security.moat_model import moat_ath, moat_eth, moat_slack


class TestTable2:
    @pytest.mark.parametrize("trh,ath", [(1000, 975), (500, 472),
                                         (250, 219)])
    def test_anchor_points_exact(self, trh, ath):
        assert moat_ath(trh) == ath

    @pytest.mark.parametrize("trh", [1000, 500, 250])
    def test_eth_is_half_ath(self, trh):
        assert moat_eth(trh) == moat_ath(trh) // 2


class TestFittedModel:
    def test_slack_matches_anchors(self):
        assert moat_slack(1000) == 25
        assert moat_slack(500) == 28
        assert moat_slack(250) == 31

    def test_slack_decreases_with_threshold(self):
        assert moat_slack(4000) < moat_slack(250)

    def test_extrapolated_ath_below_trh(self):
        for trh in (125, 2000, 4000):
            assert moat_ath(trh) < trh

    def test_ath_monotone(self):
        values = [moat_ath(t) for t in (125, 250, 500, 1000, 2000, 4000)]
        assert values == sorted(values)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            moat_slack(0)

    def test_tiny_threshold_rejected(self):
        with pytest.raises(ValueError):
            moat_ath(20)
