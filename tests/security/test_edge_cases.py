"""Edge cases across the security-analysis pipeline."""

import pytest

from repro.security.attacks_model import abo_slowdown, estimate_alpha
from repro.security.binomial import binomial_pmf, undercount_probability
from repro.security.csearch import (critical_updates, default_p,
                                    mopac_c_params)
from repro.security.failure import epsilon_for
from repro.security.markov import counter_distribution
from repro.security.tolerated import mopac_d_tolerated


class TestBinomialEdges:
    def test_single_activation(self):
        assert undercount_probability(1, 1, 0.5) == pytest.approx(0.5)

    def test_critical_beyond_activations(self):
        # cannot collect more updates than activations
        assert undercount_probability(11, 10, 0.5) == \
            pytest.approx(1.0, abs=1e-12)

    def test_pmf_sums_to_one_small_n(self):
        total = sum(binomial_pmf(k, 12, 0.3) for k in range(13))
        assert total == pytest.approx(1.0, abs=1e-12)


class TestCSearchEdges:
    def test_p_equal_one_counts_everything(self):
        # deterministic updates: C can be as large as the budget allows
        c = critical_updates(100, 1.0, 1e-9)
        assert c == 99  # P(N <= 99) = 0 < eps; P(N <= 100) = 1

    def test_tiny_activation_budget(self):
        assert critical_updates(1, 0.5, 1e-9) == 0

    def test_nonstandard_threshold_params_consistent(self):
        params = mopac_c_params(750)
        assert params.ath_star == params.critical_updates * params.inv_p
        assert params.undercount_probability <= params.epsilon

    def test_very_large_threshold(self):
        params = mopac_c_params(8000)
        assert params.p <= 1 / 64
        assert params.ath_star < 8000


class TestMarkovEdges:
    def test_single_step(self):
        y = counter_distribution(1, 0.5, p_first=0.25)
        assert y[0] == pytest.approx(0.75)
        assert y[1] == pytest.approx(0.25)

    def test_p_first_zero_never_leaves_zero(self):
        y = counter_distribution(50, 0.5, p_first=0.0)
        assert y[0] == pytest.approx(1.0)

    def test_p_one_deterministic(self):
        y = counter_distribution(10, 1.0, p_first=1.0)
        assert y[10] == pytest.approx(1.0)


class TestModelEdges:
    def test_abo_slowdown_limits(self):
        assert abo_slowdown(1e12) < 1e-10
        assert abo_slowdown(0.001) > 0.99

    def test_alpha_single_bank_is_unity_ish(self):
        alpha = estimate_alpha(22, 1 / 8, banks=1, trials=4000)
        assert alpha == pytest.approx(1.0, abs=0.03)

    def test_default_p_extremes(self):
        assert default_p(63) == 1 / 2  # clamp
        assert default_p(64_000) == pytest.approx(1 / 1024)

    def test_tolerated_beyond_table(self):
        assert mopac_d_tolerated(100) == 250

    def test_epsilon_continuous_in_threshold(self):
        assert epsilon_for(501) > epsilon_for(500)
