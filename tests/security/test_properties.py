"""Cross-cutting properties of the security-analysis pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.csearch import (critical_updates, default_p,
                                    mopac_c_params, mopac_d_params)
from repro.security.failure import epsilon_for, failure_probability
from repro.security.moat_model import moat_ath

thresholds = st.integers(125, 4000)
powers_of_two_p = st.sampled_from([1 / 2, 1 / 4, 1 / 8, 1 / 16, 1 / 32])


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(thresholds, thresholds)
    def test_failure_budget_monotone(self, a, b):
        if a < b:
            assert failure_probability(a) < failure_probability(b)
            assert epsilon_for(a) < epsilon_for(b)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from([250, 500, 1000, 2000, 4000]),
           st.sampled_from([250, 500, 1000, 2000, 4000]))
    def test_ath_star_monotone_in_trh(self, a, b):
        if a < b:
            assert mopac_c_params(a).ath_star <= mopac_c_params(b).ath_star

    @settings(max_examples=30, deadline=None)
    @given(powers_of_two_p)
    def test_c_monotone_in_p(self, p):
        """Sampling more often lets the design demand more updates."""
        eps = epsilon_for(500)
        c_low = critical_updates(472, p / 2, eps)
        c_high = critical_updates(472, p, eps)
        assert c_low <= c_high

    @settings(max_examples=20, deadline=None)
    @given(st.integers(8, 128))
    def test_mopac_d_ath_star_decreases_with_tth(self, tth):
        base = mopac_d_params(500, tth=tth).ath_star
        more = mopac_d_params(500, tth=tth + 64).ath_star
        assert more <= base


class TestStructuralRelations:
    @pytest.mark.parametrize("trh", [250, 500, 1000, 2000])
    def test_mopac_d_never_exceeds_mopac_c(self, trh):
        """Tardiness slack can only shrink the usable threshold."""
        assert mopac_d_params(trh).ath_star <= mopac_c_params(trh).ath_star

    @pytest.mark.parametrize("trh", [250, 500, 1000, 2000, 4000])
    def test_ath_star_below_ath_below_trh(self, trh):
        params = mopac_c_params(trh)
        assert params.ath_star < params.ath < trh

    @settings(max_examples=20, deadline=None)
    @given(thresholds)
    def test_default_p_power_of_two(self, trh):
        p = default_p(trh)
        inv = 1 / p
        assert inv == int(inv)
        assert int(inv) & (int(inv) - 1) == 0  # power of two

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([250, 500, 1000, 2000, 4000]))
    def test_expected_updates_far_above_c(self, trh):
        """The mean update count sits well above C — the design only
        fails in the deep tail."""
        params = mopac_c_params(trh)
        mean = params.effective_acts * params.p
        assert mean > 2 * params.critical_updates

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([250, 500, 1000, 2000, 4000]))
    def test_undercount_within_budget(self, trh):
        for params in (mopac_c_params(trh), mopac_d_params(trh)):
            assert params.undercount_probability <= params.epsilon


class TestMoatAnchors:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(100, 8000))
    def test_ath_stays_below_trh(self, trh):
        assert moat_ath(trh) < trh
