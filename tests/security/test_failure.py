"""Failure-budget model: paper Table 5 and Eqs. 3/6."""

import math

import pytest

from repro.security.failure import (budget_for, epsilon_for,
                                    failure_probability, table5)


class TestTable5:
    """Exact reproduction of the published F values."""

    @pytest.mark.parametrize("trh,f_paper", [
        (250, 3.59e-17), (500, 7.19e-17), (1000, 1.44e-16)])
    def test_f_matches_paper(self, trh, f_paper):
        assert failure_probability(trh) == pytest.approx(f_paper, rel=0.01)

    @pytest.mark.parametrize("trh,eps_paper", [
        (250, 5.99e-9), (500, 8.48e-9)])
    def test_epsilon_matches_paper(self, trh, eps_paper):
        assert epsilon_for(trh) == pytest.approx(eps_paper, rel=0.01)

    def test_epsilon_1000_known_discrepancy(self):
        """Paper prints 1.12e-8 but sqrt(1.44e-16) = 1.20e-8; we compute
        the mathematically consistent value. (The derived C = 23 is the
        same either way — see test_csearch.)"""
        assert epsilon_for(1000) == pytest.approx(1.199e-8, rel=0.01)

    def test_table5_rows(self):
        rows = table5()
        assert [b.trh for b in rows] == [250, 500, 1000]


class TestEquations:
    def test_eq3_structure(self):
        # F = T * tRC / 3.2e20 with tRC = 46 ns
        assert failure_probability(500) == pytest.approx(
            500 * 46 / 3.2e20, rel=1e-12)

    def test_eq6_sqrt(self):
        assert epsilon_for(500) == pytest.approx(
            math.sqrt(failure_probability(500)), rel=1e-12)

    def test_f_linear_in_threshold(self):
        assert failure_probability(1000) == pytest.approx(
            2 * failure_probability(500), rel=1e-12)

    def test_custom_trc(self):
        assert failure_probability(500, trc_ns=92) == pytest.approx(
            2 * failure_probability(500), rel=1e-12)

    def test_budget_dataclass(self):
        b = budget_for(500)
        assert b.mttf_years == 10_000
        assert b.epsilon == pytest.approx(math.sqrt(b.failure_probability))

    @pytest.mark.parametrize("bad", [0, -5])
    def test_bad_threshold_rejected(self, bad):
        with pytest.raises(ValueError):
            failure_probability(bad)

    def test_bad_trc_rejected(self):
        with pytest.raises(ValueError):
            failure_probability(500, trc_ns=0)
