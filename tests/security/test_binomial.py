"""Binomial tail math, cross-checked against scipy."""

import math

import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.binomial import (binomial_pmf,
                                     escape_probability_bernoulli,
                                     survival_probability,
                                     undercount_probability)


class TestPmf:
    def test_matches_scipy_midrange(self):
        assert binomial_pmf(10, 100, 0.1) == pytest.approx(
            scipy.stats.binom.pmf(10, 100, 0.1), rel=1e-10)

    def test_deep_tail_no_underflow(self):
        # P(N = 0) for A = 975, p = 1/16 is ~1e-28; naive float products
        # underflow, log-space does not.
        value = binomial_pmf(0, 975, 1 / 16)
        assert value == pytest.approx((1 - 1 / 16) ** 975, rel=1e-9)
        assert value > 0

    def test_out_of_range_is_zero(self):
        assert binomial_pmf(-1, 10, 0.5) == 0
        assert binomial_pmf(11, 10, 0.5) == 0

    def test_degenerate_p(self):
        assert binomial_pmf(0, 10, 0.0) == 1.0
        assert binomial_pmf(10, 10, 1.0) == 1.0


class TestUndercount:
    def test_matches_scipy_cdf(self):
        # P(N < C) = cdf(C - 1)
        ours = undercount_probability(22, 472, 1 / 8)
        ref = scipy.stats.binom.cdf(21, 472, 1 / 8)
        assert ours == pytest.approx(ref, rel=1e-9)

    def test_zero_critical_never_fails(self):
        assert undercount_probability(0, 100, 0.5) == 0.0

    def test_monotone_in_critical(self):
        values = [undercount_probability(c, 472, 1 / 8)
                  for c in range(0, 60, 5)]
        assert values == sorted(values)

    def test_saturates_at_one(self):
        assert undercount_probability(1000, 100, 0.01) == \
            pytest.approx(1.0, abs=1e-12)

    def test_negative_activations_rejected(self):
        with pytest.raises(ValueError):
            undercount_probability(5, -1, 0.5)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 300),
           st.floats(0.01, 0.99))
    def test_complement_identity(self, critical, acts, p):
        under = undercount_probability(critical, acts, p)
        assert survival_probability(critical, acts, p) == \
            pytest.approx(1 - under, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 200), st.floats(0.01, 0.99))
    def test_scipy_agreement_property(self, critical, acts, p):
        ours = undercount_probability(critical, acts, p)
        ref = scipy.stats.binom.cdf(critical - 1, acts, p)
        assert ours == pytest.approx(ref, rel=1e-8, abs=1e-14)


class TestBernoulliEscape:
    def test_known_value(self):
        assert escape_probability_bernoulli(100, 0.01) == pytest.approx(
            0.99 ** 100, rel=1e-12)

    def test_edge_probabilities(self):
        assert escape_probability_bernoulli(10, 0.0) == 1.0
        assert escape_probability_bernoulli(10, 1.0) == 0.0

    def test_negative_acts_rejected(self):
        with pytest.raises(ValueError):
            escape_probability_bernoulli(-1, 0.5)
