"""Critical-update search: paper Tables 6, 7, 8 reproduced exactly."""

import pytest

from repro.security.csearch import (critical_updates, default_p,
                                    drain_on_ref_default, mopac_c_params,
                                    mopac_d_params, table6)
from repro.security.failure import epsilon_for


class TestDefaultP:
    """Section 5.4 / intro: the power-of-two p menu per threshold."""

    @pytest.mark.parametrize("trh,p", [
        (250, 1 / 4), (500, 1 / 8), (1000, 1 / 16),
        (2000, 1 / 32), (4000, 1 / 64)])
    def test_paper_menu(self, trh, p):
        assert default_p(trh) == p

    def test_clamped_to_half(self):
        assert default_p(100) <= 1 / 2

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            default_p(0)


class TestTable7MoPACC:
    @pytest.mark.parametrize("trh,c,ath_star", [
        (250, 20, 80), (500, 22, 176), (1000, 23, 368)])
    def test_c_and_ath_star(self, trh, c, ath_star):
        params = mopac_c_params(trh)
        assert params.critical_updates == c
        assert params.ath_star == ath_star

    def test_effective_acts_is_ath(self):
        assert mopac_c_params(500).effective_acts == 472

    def test_chosen_c_within_budget(self):
        params = mopac_c_params(500)
        assert params.undercount_probability <= params.epsilon

    def test_update_reduction_8x_at_500(self):
        assert mopac_c_params(500).update_reduction == 8


class TestTable8MoPACD:
    @pytest.mark.parametrize("trh,a_prime,c,ath_star", [
        (250, 187, 15, 60), (500, 440, 19, 152), (1000, 943, 21, 336)])
    def test_params(self, trh, a_prime, c, ath_star):
        """A' = ATH - TTH. Note: the paper lists A' = 942 at T_RH = 1000
        (975 - 32 = 943); C and ATH* match either way."""
        params = mopac_d_params(trh)
        assert params.effective_acts == a_prime
        assert params.critical_updates == c
        assert params.ath_star == ath_star

    @pytest.mark.parametrize("trh,drain", [(250, 4), (500, 2), (1000, 1)])
    def test_drain_on_ref(self, trh, drain):
        assert drain_on_ref_default(trh) == drain

    def test_tth_too_large_rejected(self):
        with pytest.raises(ValueError):
            mopac_d_params(250, tth=300)


class TestTable6Grid:
    def test_published_values(self):
        """Spot checks of the published probability grid (boldface rows)."""
        grid = table6()
        # T=250, C=20: 1.9e-9 (0.3x)
        prob, ratio = grid[250][20]
        assert prob == pytest.approx(1.9e-9, rel=0.05)
        assert ratio < 1
        # T=500, C=22: 5.9e-9 (0.7x)
        prob, ratio = grid[500][22]
        assert prob == pytest.approx(5.9e-9, rel=0.05)
        assert 0.5 < ratio < 1
        # T=500, C=23 exceeds budget (2x)
        _, ratio = grid[500][23]
        assert ratio > 1
        # T=1000, C=23: 1.08e-8 — the largest C within budget
        prob, _ = grid[1000][23]
        assert prob == pytest.approx(1.08e-8, rel=0.05)

    def test_grid_rows_monotone(self):
        grid = table6()
        for trh, rows in grid.items():
            values = [rows[c][0] for c in sorted(rows)]
            assert values == sorted(values)


class TestCriticalUpdates:
    def test_largest_safe_c(self):
        eps = epsilon_for(500)
        c = critical_updates(472, 1 / 8, eps)
        assert c == 22
        # one more would exceed the budget
        from repro.security.binomial import undercount_probability
        assert undercount_probability(c + 1, 472, 1 / 8) <= eps
        assert undercount_probability(c + 2, 472, 1 / 8) > eps

    def test_zero_when_budget_tiny(self):
        assert critical_updates(100, 0.5, 1e-300) == 0

    def test_bad_p(self):
        with pytest.raises(ValueError):
            critical_updates(100, 0, 1e-9)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            critical_updates(100, 0.5, 0)

    def test_c_grows_with_activations(self):
        eps = epsilon_for(500)
        c_small = critical_updates(200, 1 / 8, eps)
        c_large = critical_updates(800, 1 / 8, eps)
        assert c_large > c_small


class TestPaperNarrative:
    def test_updates_reduced_8x_at_default_trh(self):
        """Abstract: 'at T_RH of 500, MoPAC-C can reduce updates by 8x'."""
        assert 1 / mopac_c_params(500).p == 8

    def test_updates_reduced_16x_at_1000(self):
        assert 1 / mopac_c_params(1000).p == 16

    def test_ath_star_below_ath(self):
        for trh in (250, 500, 1000):
            params = mopac_c_params(trh)
            assert params.ath_star < params.ath
