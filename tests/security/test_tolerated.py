"""Table 13: tolerated thresholds for MoPAC-D vs MINT vs PrIDE."""

import pytest

from repro.security.tolerated import (acts_per_tref_window, mint_tolerated,
                                      mopac_d_tolerated, pride_tolerated,
                                      table13)


class TestWindow:
    def test_w_about_85(self):
        # W = tREFI / tRC = 3900 / 46
        assert acts_per_tref_window() == pytest.approx(84.78, rel=0.01)


class TestMoPACDColumn:
    @pytest.mark.parametrize("updates,trh", [(4, 250), (2, 500), (1, 1000)])
    def test_inverts_drain_table(self, updates, trh):
        assert mopac_d_tolerated(updates) == trh

    def test_more_updates_never_worse(self):
        assert mopac_d_tolerated(8) <= mopac_d_tolerated(1)

    def test_bad_updates(self):
        with pytest.raises(ValueError):
            mopac_d_tolerated(0)


class TestMINTModel:
    @pytest.mark.parametrize("k,paper", [(1, 1491), (2, 2920), (4, 5725)])
    def test_within_5pct_of_paper(self, k, paper):
        assert mint_tolerated(k) == pytest.approx(paper, rel=0.05)

    def test_monotone_in_refs(self):
        assert mint_tolerated(1) < mint_tolerated(2) < mint_tolerated(4)

    def test_bad_refs(self):
        with pytest.raises(ValueError):
            mint_tolerated(0)


class TestPrIDEModel:
    @pytest.mark.parametrize("k,paper", [(1, 1975), (2, 3808), (4, 7474)])
    def test_within_8pct_of_paper(self, k, paper):
        assert pride_tolerated(k) == pytest.approx(paper, rel=0.08)

    def test_pride_worse_than_mint(self):
        for k in (1, 2, 4):
            assert pride_tolerated(k) > mint_tolerated(k)


class TestTable13:
    def test_three_rows(self):
        rows = table13()
        assert [r.mitigation_ns_per_ref for r in rows] == [240, 120, 60]

    def test_headline_ratios(self):
        """Section 9.2: MoPAC-D tolerates ~6x lower than MINT, ~8x lower
        than PrIDE."""
        for row in table13():
            assert row.mint_ratio == pytest.approx(6, abs=0.7)
            assert row.pride_ratio == pytest.approx(8, abs=0.9)

    def test_mopac_d_column(self):
        assert [r.mopac_d for r in table13()] == [250, 500, 1000]
