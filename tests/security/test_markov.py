"""NUP Markov chain: footnote-8 sanity check and Table 11."""

import numpy as np
import pytest
import scipy.stats

from repro.security.csearch import critical_updates, mopac_d_params
from repro.security.failure import epsilon_for
from repro.security.markov import (counter_distribution,
                                   critical_updates_markov,
                                   markov_params_to_mopac,
                                   mopac_d_nup_params)


class TestChainBasics:
    def test_distribution_sums_to_one(self):
        y = counter_distribution(100, 1 / 8)
        assert float(y.sum()) == pytest.approx(1.0, abs=1e-9)

    def test_zero_steps(self):
        y = counter_distribution(0, 1 / 8)
        assert y[0] == 1.0

    def test_uniform_chain_is_binomial(self):
        """Footnote 8: with uniform edges the chain equals the binomial."""
        y = counter_distribution(50, 1 / 4, p_first=1 / 4)
        ref = scipy.stats.binom.pmf(np.arange(51), 50, 1 / 4)
        assert np.allclose(y, ref, atol=1e-12)

    def test_nup_shifts_mass_down(self):
        uniform = counter_distribution(200, 1 / 8, p_first=1 / 8)
        nup = counter_distribution(200, 1 / 8, p_first=1 / 16)
        mean_uniform = float((np.arange(201) * uniform).sum())
        mean_nup = float((np.arange(201) * nup).sum())
        assert mean_nup < mean_uniform
        # Only the first update is slowed: the mean drops by about one
        # extra waiting period = 1/(p/2) - 1/p = 8 activations * p = 1.
        assert mean_uniform - mean_nup == pytest.approx(1.0, abs=0.15)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            counter_distribution(-1, 0.5)
        with pytest.raises(ValueError):
            counter_distribution(10, 0)


class TestFootnote8:
    """Uniform-edge Markov search must equal the binomial search."""

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_uniform_markov_equals_binomial(self, trh):
        params = mopac_d_params(trh)
        eps = epsilon_for(trh)
        c_markov = critical_updates_markov(
            params.effective_acts, params.p, eps, p_first=params.p)
        assert c_markov == params.critical_updates

    def test_uniform_markov_equals_binomial_generic(self):
        eps = 1e-8
        for acts, p in ((100, 1 / 4), (300, 1 / 8), (50, 1 / 2)):
            assert critical_updates_markov(acts, p, eps, p_first=p) == \
                critical_updates(acts, p, eps)


class TestTable11:
    @pytest.mark.parametrize("trh,uniform,nup", [
        (1000, 336, 288), (500, 152, 136), (250, 60, 56)])
    def test_published_ath_star(self, trh, uniform, nup):
        params = mopac_d_nup_params(trh)
        assert params.uniform_ath_star == uniform
        assert params.nup_ath_star == nup

    def test_nup_always_at_most_uniform(self):
        for trh in (250, 500, 1000):
            params = mopac_d_nup_params(trh)
            assert params.nup_ath_star <= params.uniform_ath_star

    def test_conversion_to_common_shape(self):
        nup = mopac_d_nup_params(500)
        params = markov_params_to_mopac(nup)
        assert params.ath_star == nup.nup_ath_star
        assert params.trh == 500

    def test_tth_exhausts_budget(self):
        with pytest.raises(ValueError):
            mopac_d_nup_params(250, tth=250)
