"""Performance-attack models: Tables 9 and 10, the alpha Monte-Carlo."""

import pytest

from repro.security.attacks_model import (ABO_STALL_ACTS, abo_slowdown,
                                          attack_ath_star, estimate_alpha,
                                          mopac_c_attack, mopac_d_attacks,
                                          single_bank_slowdown)
from repro.security.csearch import mopac_c_params, mopac_d_params


class TestAboSlowdown:
    def test_formula(self):
        # slowdown = 7 / (N + 7), Section 7.1
        assert abo_slowdown(93) == pytest.approx(7 / 100)

    def test_bad_n(self):
        with pytest.raises(ValueError):
            abo_slowdown(0)

    def test_stall_constant_is_seven(self):
        assert ABO_STALL_ACTS == 7


class TestAttackAthStar:
    @pytest.mark.parametrize("trh,expected", [(250, 84), (500, 184),
                                              (1000, 384)])
    def test_mopac_c_attack_threshold(self, trh, expected):
        """Table 9's ATH* = (C + 1)/p, one quantum above Table 7."""
        assert attack_ath_star(mopac_c_params(trh)) == expected

    @pytest.mark.parametrize("trh,expected", [(250, 64), (500, 160),
                                              (1000, 352)])
    def test_mopac_d_attack_threshold(self, trh, expected):
        assert attack_ath_star(mopac_d_params(trh)) == expected


class TestTable9:
    @pytest.mark.parametrize("trh,paper", [(250, 0.140), (500, 0.067),
                                           (1000, 0.032)])
    def test_slowdowns_near_paper(self, trh, paper):
        report = mopac_c_attack(trh)
        assert report.slowdown == pytest.approx(paper, abs=0.01)

    def test_slowdown_decreases_with_threshold(self):
        values = [mopac_c_attack(t).slowdown for t in (250, 500, 1000)]
        assert values == sorted(values, reverse=True)


class TestTable10:
    @pytest.mark.parametrize("trh,pattern,paper", [
        (250, "mitigation", 0.166), (250, "srq_full", 0.259),
        (250, "tardiness", 0.179),
        (500, "mitigation", 0.074), (500, "srq_full", 0.149),
        (500, "tardiness", 0.179),
        (1000, "mitigation", 0.035), (1000, "srq_full", 0.081),
        (1000, "tardiness", 0.179),
    ])
    def test_slowdowns_match_paper(self, trh, pattern, paper):
        reports = mopac_d_attacks(trh)
        assert reports[pattern].slowdown == pytest.approx(paper, abs=0.005)

    def test_tardiness_independent_of_threshold(self):
        values = {t: mopac_d_attacks(t)["tardiness"].slowdown
                  for t in (250, 500, 1000)}
        assert len(set(values.values())) == 1

    def test_all_attacks_below_26pct(self):
        """Section 7.4: 'The slowdown remains within 26%'."""
        for trh in (250, 500, 1000):
            for report in mopac_d_attacks(trh).values():
                assert report.slowdown <= 0.26


class TestAlphaMonteCarlo:
    def test_alpha_in_plausible_band(self):
        """Section 7.2 reports alpha ~= 0.55; the race factor must lie
        strictly between 'instant' and 'no dispersion'."""
        alpha = estimate_alpha(22, 1 / 8, trials=4000)
        assert 0.4 < alpha < 0.8

    def test_alpha_below_one(self):
        assert estimate_alpha(20, 1 / 4, trials=2000) < 1.0

    def test_more_banks_faster(self):
        a32 = estimate_alpha(22, 1 / 8, banks=32, trials=4000)
        a4 = estimate_alpha(22, 1 / 8, banks=4, trials=4000)
        assert a32 < a4

    def test_deterministic_given_seed(self):
        assert estimate_alpha(22, 1 / 8, trials=1000, seed=1) == \
            estimate_alpha(22, 1 / 8, trials=1000, seed=1)

    def test_bad_c(self):
        with pytest.raises(ValueError):
            estimate_alpha(0, 1 / 8)


class TestSingleBank:
    def test_single_bank_milder_than_multibank(self):
        # Multi-bank reaches the threshold in alpha * ATH* activations,
        # so it stalls more often than a lone bank.
        single = single_bank_slowdown(500)
        multi = mopac_c_attack(500).slowdown
        assert single < multi
