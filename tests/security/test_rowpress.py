"""Row-Press extension (Appendix A, Table 14)."""

import pytest

from repro.security.csearch import mopac_c_params, mopac_d_params
from repro.security.rowpress import (ROWPRESS_DAMAGE, RowPressDamage,
                                     mopac_c_rowpress_params,
                                     mopac_d_rowpress_params,
                                     rowpress_budget)


class TestTable14:
    @pytest.mark.parametrize("trh,ath_star", [(500, 80), (1000, 160)])
    def test_mopac_c_published(self, trh, ath_star):
        assert mopac_c_rowpress_params(trh).ath_star == ath_star

    @pytest.mark.parametrize("trh,ath_star", [(500, 64), (1000, 144)])
    def test_mopac_d_published(self, trh, ath_star):
        assert mopac_d_rowpress_params(trh).ath_star == ath_star


class TestDerating:
    def test_budget_is_ath_over_damage(self):
        assert rowpress_budget(500) == int(472 / 1.5)

    def test_rowpress_ath_star_below_plain(self):
        for trh in (500, 1000):
            assert mopac_c_rowpress_params(trh).ath_star < \
                mopac_c_params(trh).ath_star
            assert mopac_d_rowpress_params(trh).ath_star < \
                mopac_d_params(trh).ath_star

    def test_damage_factor_is_1_5(self):
        assert ROWPRESS_DAMAGE == 1.5

    def test_unity_damage_recovers_plain_budget(self):
        assert rowpress_budget(500, damage=1.0) == 472

    def test_low_threshold_budget_exhaustion(self):
        """Footnote 9: at very low T_RH the Row-Press budget collapses."""
        with pytest.raises(ValueError):
            mopac_d_rowpress_params(250, tth=200)


class TestSCtrIncrement:
    """Appendix A: SCtr += ceil(tON / 180 ns)."""

    @pytest.mark.parametrize("ton,inc", [
        (10, 1), (180, 1), (181, 2), (360, 2), (361, 3), (900, 5)])
    def test_increment(self, ton, inc):
        assert RowPressDamage(ton).sctr_increment == inc

    def test_minimum_one(self):
        assert RowPressDamage(0).sctr_increment == 1
