"""Implementation <-> analysis linkage.

The security proofs assume specific sampling distributions; these tests
confirm the *implemented* policies realise exactly those distributions,
at a statistically testable failure budget (the real 1e-9 epsilon cannot
be sampled directly, so we re-run the same C-search at epsilon ~ 5% and
check empirical frequencies against it).
"""

import random
import statistics

import pytest
import scipy.stats

from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.mopac_d import MintSampler
from repro.security.binomial import undercount_probability
from repro.security.csearch import critical_updates

GEO = dict(banks=1, rows=64, refresh_groups=8)
A = 472  # the T_RH = 500 ATH
P = 1 / 8


def updates_in_a_episodes(seed: int) -> int:
    """Counter updates a hammered row collects over A activations."""
    policy = MoPACCPolicy(500, **GEO, rng=random.Random(seed))
    updates = 0
    for i in range(A):
        decision = policy.on_activate(0, 5, i)
        if decision.counter_update:
            updates += 1
    return updates


class TestMoPACCMatchesBinomial:
    TRIALS = 400

    @pytest.fixture(scope="class")
    def samples(self):
        return [updates_in_a_episodes(seed) for seed in range(self.TRIALS)]

    def test_mean_matches(self, samples):
        assert statistics.mean(samples) == pytest.approx(A * P, rel=0.05)

    def test_variance_matches(self, samples):
        expected = A * P * (1 - P)
        assert statistics.variance(samples) == pytest.approx(
            expected, rel=0.25)

    def test_tail_frequency_matches_relaxed_epsilon(self, samples):
        """Re-run the paper's C-search at epsilon = 0.05 and check the
        empirical undercount frequency respects it."""
        eps = 0.05
        c = critical_updates(A, P, eps)
        empirical = sum(1 for n in samples if n <= c) / len(samples)
        # the model guarantees P(N <= C) <= eps; allow sampling noise
        assert empirical <= eps + 3 * (eps / self.TRIALS) ** 0.5 + 0.02

    def test_distribution_ks(self, samples):
        """Kolmogorov-Smirnov against Binomial(A, p)."""
        result = scipy.stats.kstest(
            samples, lambda x: scipy.stats.binom.cdf(x, A, P))
        assert result.pvalue > 0.001


class TestMintMatchesWindowModel:
    def test_exactly_one_selection_per_window_long_run(self):
        window = 8
        sampler = MintSampler(window, random.Random(3))
        selections = sum(sampler.observe(i % 5) is not None
                         for i in range(window * 2000))
        assert selections == 2000

    def test_selected_position_uniform_chi_square(self):
        """Feeding row = slot index makes the returned candidate reveal
        which slot was sampled; the slots must be uniform."""
        window = 8
        sampler = MintSampler(window, random.Random(4))
        counts = [0] * window
        for _ in range(4000):
            for position in range(window):
                selected = sampler.observe(position)
                if selected is not None:
                    counts[selected] += 1
        chi2 = sum((c - 500) ** 2 / 500 for c in counts)
        # 7 degrees of freedom; 0.999 quantile ~ 24.3
        assert chi2 < 24.3

    def test_target_row_selection_probability(self):
        """A row occupying k of the window's slots is selected with
        probability k / window — the MINT security primitive."""
        window = 8
        target = 99
        sampler = MintSampler(window, random.Random(5))
        hits = 0
        rounds = 5000
        for _ in range(rounds):
            selected = None
            for position in range(window):
                row = target if position < 2 else position  # two slots
                result = sampler.observe(row)
                if result is not None:
                    selected = result
            if selected == target:
                hits += 1
        assert hits / rounds == pytest.approx(2 / 8, abs=0.02)


class TestModelConservatism:
    def test_analysis_epsilon_unreachable_in_practice(self):
        """At the real parameters the undercount probability is so small
        that 400 trials should essentially never witness one."""
        c = 22
        assert undercount_probability(c + 1, A, P) < 1e-8
        samples = [updates_in_a_episodes(seed) for seed in range(100)]
        assert min(samples) > c
