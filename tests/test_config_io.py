"""INI serialisation of design points and the campaign tool."""

import pathlib

import pytest

from repro.config_io import (config_summary, design_point_from_ini,
                             design_point_to_ini, load_design_point,
                             save_design_point)
from repro.config import SystemConfig
from repro.sim.runner import DesignPoint
from repro.tools import campaign


class TestIniRoundtrip:
    def test_default_point(self):
        point = DesignPoint(workload="mcf", design="mopac-d", trh=500)
        assert design_point_from_ini(design_point_to_ini(point)) == point

    def test_fancy_point(self):
        point = DesignPoint(
            workload="hammer", design="mopac-d-nup", trh=250,
            instructions=12_345, seed=99, page_policy="ton100", chips=4,
            srq_size=32, drain_on_ref=3, p=1 / 32, rows_per_bank=1024,
            refresh_scale=1 / 128, rowpress=True, sampler="para",
            abo_level=2)
        assert design_point_from_ini(design_point_to_ini(point)) == point

    def test_auto_fields(self):
        point = DesignPoint(workload="mcf", design="mopac-d")
        text = design_point_to_ini(point)
        assert "drain_on_ref = auto" in text
        assert "p = auto" in text

    def test_ini_contains_resolved_timing(self):
        text = design_point_to_ini(
            DesignPoint(workload="mcf", design="prac"))
        assert "[timing]" in text
        assert "trp = 14" in text  # base timing; PRAC applies per policy

    def test_file_roundtrip(self, tmp_path):
        point = DesignPoint(workload="add", design="prac", trh=1000)
        path = tmp_path / "point.ini"
        save_design_point(point, str(path))
        assert load_design_point(str(path)) == point

    def test_missing_section_rejected(self):
        with pytest.raises(ValueError):
            design_point_from_ini("[dram]\nsubchannels = 2\n")


class TestConfigSummary:
    def test_paper_summary(self):
        summary = config_summary(SystemConfig.paper())
        assert summary["capacity"] == "32.0 GiB"
        assert summary["banks"] == "64"
        assert summary["cores"] == "8"


class TestCampaign:
    FAST = dict(instructions=8_000)

    def test_plan_run_stats(self, tmp_path, capsys):
        assert campaign.main([
            "plan", "--dir", str(tmp_path), "--workloads", "xalancbmk",
            "--designs", "prac", "mopac-c", "--trhs", "500",
            "--instructions", "8000"]) == 0
        inis = list(pathlib.Path(tmp_path).glob("*.ini"))
        assert len(inis) == 2

        assert campaign.main(["run", "--dir", str(tmp_path)]) == 0
        csv_path = pathlib.Path(tmp_path) / "results.csv"
        assert csv_path.exists()
        content = csv_path.read_text()
        assert "xalancbmk" in content
        assert content.count("\n") == 3  # header + 2 rows

        assert campaign.main(["stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "prac" in out and "mopac-c" in out

    def test_stats_without_run_fails(self, tmp_path):
        assert campaign.main(["stats", "--dir", str(tmp_path)]) == 2

    def test_run_without_plan_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            campaign.run(pathlib.Path(tmp_path))
