"""Shared fixtures: small geometries so tests run in milliseconds."""

from __future__ import annotations

import pytest

from repro.config import DRAMConfig, SystemConfig
from repro.dram.timing import ddr5_base, ddr5_prac


@pytest.fixture
def base_timing():
    return ddr5_base()


@pytest.fixture
def prac_timing():
    return ddr5_prac()


@pytest.fixture
def small_dram():
    """4 banks/sub-channel, 256 rows, fast refresh cycling."""
    return DRAMConfig(
        subchannels=2, banks_per_subchannel=4, rows_per_bank=256,
        timing=ddr5_base().scaled_refresh(1 / 256),
    )


@pytest.fixture
def small_system(small_dram):
    return SystemConfig(dram=small_dram, cores=2)


#: Conventional small policy geometry used across mitigation tests.
POLICY_GEOMETRY = dict(banks=4, rows=512, refresh_groups=32)
