"""The conformance oracle: clean traces pass, broken traces don't."""

import random

import pytest

from repro.check import (ConformanceOracle, OracleConfig, events_from_jsonl,
                         oracle_config_for, verify_point)
from repro.check.mutations import (MutationError, drop_pre, shrink_trc,
                                   skip_rfm)
from repro.check.driver import trace_point
from repro.dram.timing import ddr5_base, ddr5_prac
from repro.obs.tracer import TraceEvent
from repro.sim.runner import DesignPoint

NS = 1000

#: ABO-heavy point: 13+ ALERT/RFM pairs in its trace, so every mutation
#: (including skip-rfm) has sites to hit
ABO_POINT = DesignPoint(
    workload="hammer", design="mopac-d", trh=250, instructions=12_000,
    rows_per_bank=128, refresh_scale=1 / 256, p=1.0, srq_size=5,
    drain_on_ref=0)


@pytest.fixture(scope="module")
def abo_trace():
    return trace_point(ABO_POINT).events()


@pytest.fixture(scope="module")
def abo_config():
    return oracle_config_for(ABO_POINT)


def base_config(banks=4):
    return OracleConfig(normal=ddr5_base(), counter_update=ddr5_prac(),
                        banks=banks)


def ev(time_ns, kind, bank=0, row=0, cu=False):
    return TraceEvent(time_ps=time_ns * NS, kind=kind, subchannel=0,
                      bank=bank, row=row, cause="", cu=cu)


class TestCleanTraces:
    def test_campaign_point_verifies_clean(self, abo_trace, abo_config):
        oracle = ConformanceOracle(abo_config)
        assert oracle.verify(abo_trace) == []
        assert oracle.ok
        assert oracle.events_checked == len(abo_trace)

    def test_trace_exercises_the_abo_protocol(self, abo_trace):
        kinds = {e.kind for e in abo_trace}
        assert {"ACT", "PRE", "REF", "ALERT", "RFM"} <= kinds

    def test_default_point_verifies_clean(self):
        verdict = verify_point(DesignPoint(
            workload="mcf", design="mopac-c", instructions=20_000,
            rows_per_bank=256, refresh_scale=1 / 128))
        assert verdict.ok, verdict.describe()


class TestHandCraftedViolations:
    """Tiny synthetic traces pinning individual rules."""

    def test_act_on_open_bank(self):
        events = [ev(0, "ACT", row=1), ev(100, "ACT", row=2)]
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "act.open" in rules

    def test_act_too_soon_after_pre(self):
        events = [ev(0, "ACT", row=1), ev(40, "PRE", row=1),
                  ev(45, "ACT", row=2)]  # tRP is 14 ns but tRC is 46 ns
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "act.early" in rules

    def test_prac_episode_uses_counter_update_timing(self):
        # 40 ns open time is legal for the base episode (tRAS 32) but
        # illegal for a PRAC counter-update episode... the cu episode's
        # tRAS is 16, so instead pin the PRE->ACT gap: cu tRP is 36 ns.
        events = [ev(0, "ACT", row=1, cu=True), ev(40, "PRE", row=1,
                                                   cu=True),
                  ev(60, "ACT", row=2)]  # 20 ns < PRAC tRP (36 ns)
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "act.early" in rules
        # same gap under a plain episode is legal (base tRP is 14 ns,
        # ACT->ACT 60 ns > tRC 46 ns)
        legal = [ev(0, "ACT", row=1), ev(40, "PRE", row=1),
                 ev(60, "ACT", row=2)]
        assert ConformanceOracle(base_config()).verify(legal) == []

    def test_column_to_closed_bank(self):
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify([ev(0, "RD")])]
        assert "col.closed" in rules

    def test_column_to_wrong_row(self):
        events = [ev(0, "ACT", row=1), ev(20, "RD", row=2)]
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "col.row" in rules

    def test_trrd_between_banks(self):
        events = [ev(0, "ACT", bank=0, row=1),
                  ev(1, "ACT", bank=1, row=1)]  # 1 ns < tRRD (2.5 ns)
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "act.trrd" in rules

    def test_command_past_unserviced_alert(self):
        events = [ev(0, "ACT", row=1),
                  ev(10, "ALERT", bank=-1, row=-1),
                  ev(300, "PRE", row=1)]  # deadline was 10 + 180 ns
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "abo.window" in rules

    def test_trailing_alert_is_tolerated(self):
        events = [ev(0, "ACT", row=1), ev(50, "PRE", row=1),
                  ev(60, "ALERT", bank=-1, row=-1)]
        assert ConformanceOracle(base_config()).verify(events) == []

    def test_unprompted_rfm(self):
        rules = [v.rule for v in ConformanceOracle(base_config()).verify(
            [ev(0, "RFM", bank=-1, row=-1)])]
        assert "abo.unprompted" in rules

    def test_command_inside_rfm_stall(self):
        events = [ev(0, "ACT", row=1), ev(50, "PRE", row=1),
                  ev(60, "ALERT", bank=-1, row=-1),
                  ev(240, "RFM", bank=-1, row=-1),
                  ev(300, "ACT", row=2)]  # stall runs until 240+350 ns
        rules = [v.rule for v in
                 ConformanceOracle(base_config()).verify(events)]
        assert "abo.stall" in rules


class TestMutationsCaught:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_drop_pre(self, abo_trace, abo_config, seed):
        mutant = drop_pre(abo_trace, random.Random(seed))
        assert len(mutant) == len(abo_trace) - 1
        rules = {v.rule for v in
                 ConformanceOracle(abo_config).verify(mutant)}
        # a dropped ordinary PRE shows up as an ACT on an open bank; a
        # dropped refresh forced-close leaves the refresh window stuck
        # and floods the refblock rules instead
        assert rules & {"act.open", "act.refblock"}

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_shrink_trc(self, abo_trace, abo_config, seed):
        mutant = shrink_trc(abo_trace, abo_config, random.Random(seed))
        rules = {v.rule for v in
                 ConformanceOracle(abo_config).verify(mutant)}
        assert "act.early" in rules

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_skip_rfm(self, abo_trace, abo_config, seed):
        mutant = skip_rfm(abo_trace, random.Random(seed))
        assert len(mutant) < len(abo_trace)
        rules = {v.rule for v in
                 ConformanceOracle(abo_config).verify(mutant)}
        assert "abo.window" in rules

    def test_mutation_without_site_raises(self):
        with pytest.raises(MutationError):
            skip_rfm([ev(0, "ACT", row=1)], random.Random(0))


class TestJsonlRoundTrip:
    def test_events_survive_jsonl(self, abo_trace, abo_config, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = trace_point(ABO_POINT)
        tracer.to_jsonl(str(path))
        reloaded = events_from_jsonl(str(path))
        assert reloaded == tracer.events()
        assert ConformanceOracle(abo_config).verify(reloaded) == []
