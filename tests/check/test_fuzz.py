"""The scheduler fuzzer: derivation, shrinking, and replay discipline."""

import pytest

from repro.check.fuzz import (build_case, replay_case, run_case, run_fuzz,
                              shrink_prefix)


class TestShrinkPrefix:
    def test_finds_the_exact_boundary(self):
        items = list(range(100))
        # fails as soon as the prefix contains item 37
        assert shrink_prefix(items, lambda p: 37 in p) == 38

    def test_single_item_failure(self):
        assert shrink_prefix([7], lambda p: len(p) >= 1) == 1

    def test_failure_at_the_very_end(self):
        items = list(range(50))
        assert shrink_prefix(items, lambda p: 49 in p) == 50

    def test_raises_when_full_sequence_passes(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_prefix([1, 2, 3], lambda p: False)

    @pytest.mark.parametrize("boundary", [1, 2, 13, 64, 99, 100])
    def test_bisection_matches_linear_scan(self, boundary):
        items = list(range(100))
        fails = lambda p: len(p) >= boundary  # noqa: E731
        assert shrink_prefix(items, fails) == boundary


class TestCaseDerivation:
    def test_same_seed_same_case(self):
        assert build_case(0xC4EC, 3) == build_case(0xC4EC, 3)

    def test_indices_draw_different_cases(self):
        cases = [build_case(0xC4EC, i) for i in range(8)]
        assert len({c.seed for c in cases}) == 8
        assert len({c.requests for c in cases}) == 8

    def test_geometry_and_arrivals_are_sane(self):
        for index in range(6):
            case = build_case(0x5EED, index)
            assert case.banks in (2, 4, 8)
            assert case.rows in (64, 128)
            arrivals = [r.arrival_ps for r in case.requests]
            assert arrivals == sorted(arrivals)
            assert all(0 <= r.bank < case.banks for r in case.requests)
            assert all(0 <= r.row < case.rows for r in case.requests)

    def test_describe_carries_the_seed(self):
        case = build_case(0xC4EC, 0)
        assert hex(case.seed) in case.describe()


class TestRunAndReplay:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(cases=4, master_seed=0xC4EC)
        assert report.ok, report.describe()
        assert report.cases_run == 4
        assert report.events_checked > 0

    def test_replay_reproduces_the_exact_trace(self):
        case = build_case(0xC4EC, 1)
        events_a, violations_a, runaway_a = run_case(case)
        events_b, violations_b, runaway_b = run_case(case)
        assert not runaway_a and not runaway_b
        assert events_a == events_b
        assert violations_a == violations_b

    def test_replay_case_rebuilds_from_logged_seeds(self):
        case, violations = replay_case(0xC4EC, 2)
        assert case == build_case(0xC4EC, 2)
        assert violations == []

    def test_regression_seed_that_caught_the_arrival_leap(self):
        # master seed 0x3039 produced the not-yet-arrived-request clock
        # leap before the controller fix; it must stay clean now
        report = run_fuzz(cases=6, master_seed=0x3039)
        assert report.ok, report.describe()
