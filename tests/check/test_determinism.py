"""Determinism matrix: one seed, one answer — regardless of machinery.

The same design point must produce bit-identical ``SystemResult.stats``
(and core/MC stats) whether it runs serially or through the parallel
sweep engine, and whether or not an :class:`EventTracer` is attached.
Tracing is observability, not physics; parallelism is transport, not
physics. Any divergence here means hidden global state or an
order-dependent code path.
"""

import dataclasses

import pytest

from repro.exec.engine import SweepEngine
from repro.obs.tracer import EventTracer
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)

POINTS = [
    DesignPoint(workload="mcf", design="mopac-c", **FAST),
    DesignPoint(workload="xalancbmk", design="mopac-d", **FAST),
    DesignPoint(workload="hammer", design="qprac", trh=500, **FAST),
]


def fingerprint(result):
    return (
        dict(result.stats),
        [dataclasses.asdict(s) for s in result.core_stats],
        [dataclasses.asdict(s) for s in result.mc_stats],
        result.elapsed_ps,
    )


@pytest.mark.parametrize("point", POINTS,
                         ids=lambda p: f"{p.workload}.{p.design}")
class TestTracerTransparency:
    def test_tracer_on_equals_tracer_off(self, point):
        bare = run_point(point)
        tracer = EventTracer(capacity=2_000_000)
        traced = run_point(point, tracer=tracer)
        assert len(tracer) > 0  # the traced run really did record
        assert fingerprint(traced) == fingerprint(bare)

    def test_rerun_is_bit_identical(self, point):
        assert fingerprint(run_point(point)) == fingerprint(run_point(point))


class TestSerialParallelEquivalence:
    def test_sweep_paths_agree(self):
        serial = SweepEngine(workers=1, parallel=False, cache=None,
                             use_memo=False)
        parallel = SweepEngine(workers=2, parallel=True, cache=None,
                               use_memo=False)
        serial_results = serial.run(POINTS)
        parallel_results = parallel.run(POINTS)
        for point, a, b in zip(POINTS, serial_results, parallel_results):
            assert fingerprint(a) == fingerprint(b), point
