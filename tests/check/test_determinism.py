"""Determinism matrix: one seed, one answer — regardless of machinery.

The same design point must produce bit-identical ``SystemResult.stats``
(and core/MC stats) across every combination of machinery:

* **engine**: the reference event loop vs the fast engine
  (``REPRO_ENGINE=fast``, :mod:`repro.sim.fastpath`);
* **transport**: serial inline execution vs the parallel sweep engine;
* **observability**: with and without an :class:`EventTracer` attached.

Tracing is observability, not physics; parallelism is transport, not
physics; the fast engine is machinery, not physics. Any divergence here
means hidden global state, an order-dependent code path, or a fast-path
shortcut that changed the simulated event sequence.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.engine import SweepEngine
from repro.obs.tracer import EventTracer
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)

POINTS = [
    DesignPoint(workload="mcf", design="mopac-c", **FAST),
    DesignPoint(workload="xalancbmk", design="mopac-d", **FAST),
    DesignPoint(workload="hammer", design="qprac", trh=500, **FAST),
]

ENGINES = ("reference", "fast")


def fingerprint(result):
    return (
        dict(result.stats),
        [dataclasses.asdict(s) for s in result.core_stats],
        [dataclasses.asdict(s) for s in result.mc_stats],
        result.elapsed_ps,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("point", POINTS,
                         ids=lambda p: f"{p.workload}.{p.design}")
class TestTracerTransparency:
    def test_tracer_on_equals_tracer_off(self, point, engine):
        bare = run_point(point, engine=engine)
        tracer = EventTracer(capacity=2_000_000)
        traced = run_point(point, tracer=tracer, engine=engine)
        assert len(tracer) > 0  # the traced run really did record
        assert fingerprint(traced) == fingerprint(bare)

    def test_rerun_is_bit_identical(self, point, engine):
        assert fingerprint(run_point(point, engine=engine)) \
            == fingerprint(run_point(point, engine=engine))


@pytest.mark.parametrize("point", POINTS,
                         ids=lambda p: f"{p.workload}.{p.design}")
class TestEngineEquivalence:
    def test_fast_matches_reference(self, point):
        fast = run_point(point, engine="fast")
        reference = run_point(point, engine="reference")
        assert fingerprint(fast) == fingerprint(reference)

    def test_traced_events_match(self, point):
        traces = {}
        for engine in ENGINES:
            tracer = EventTracer(capacity=2_000_000)
            run_point(point, tracer=tracer, engine=engine)
            traces[engine] = tracer.events()
        assert traces["fast"] == traces["reference"]


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sweep_paths_agree(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        serial = SweepEngine(workers=1, parallel=False, cache=None,
                             use_memo=False)
        parallel = SweepEngine(workers=2, parallel=True, cache=None,
                               use_memo=False)
        serial_results = serial.run(POINTS)
        parallel_results = parallel.run(POINTS)
        for point, a, b in zip(POINTS, serial_results, parallel_results):
            assert fingerprint(a) == fingerprint(b), point


@settings(max_examples=8, deadline=None)
@given(
    workload=st.sampled_from(("add", "mcf", "hammer", "mix2")),
    design=st.sampled_from(("baseline", "prac", "qprac", "mopac-c",
                            "mopac-d", "mopac-d-nup")),
    instructions=st.integers(min_value=2_000, max_value=8_000),
    page_policy=st.sampled_from(("open", "close", "ton100")),
    refresh_mode=st.sampled_from(("all-bank", "same-bank")),
)
def test_engines_agree_on_random_points(workload, design, instructions,
                                        page_policy, refresh_mode):
    """Property: the engines agree on arbitrary short design points."""
    point = DesignPoint(workload=workload, design=design, trh=500,
                        instructions=instructions, rows_per_bank=512,
                        refresh_scale=1 / 256, page_policy=page_policy,
                        refresh_mode=refresh_mode)
    assert fingerprint(run_point(point, engine="fast")) \
        == fingerprint(run_point(point, engine="reference"))
