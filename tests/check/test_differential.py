"""The differential harness: invariants hold, and the checks have teeth."""

import pytest

from repro.check.differential import (EXACT_DESIGNS,
                                      CounterConservationAuditor,
                                      make_targets, run_differential)
from repro.mitigations import registry
from repro.mitigations.prac import PRACMoatPolicy
from repro.mitigations.prac_state import BLAST_RADIUS

FAST = dict(trh=500, activations=30_000, banks=4, rows=512,
            refresh_groups=64)

#: one full-registry run shared by every test that reads seed 0xD1FF
REPORT = run_differential(**FAST, seed=0xD1FF)


class TestInvariantsHold:
    def test_all_registered_designs_pass(self):
        assert REPORT.ok, REPORT.describe()
        assert {o.design for o in REPORT.outcomes} == set(registry.names())

    def test_no_design_exceeds_tolerated_count(self):
        report = run_differential(**FAST, seed=0xBEEF)
        for outcome in report.outcomes:
            spec = registry.get(outcome.design)
            if spec.secure:
                assert not outcome.attack_succeeded, outcome.design

    def test_all_designs_saw_the_same_stream(self):
        totals = {o.total_activations for o in REPORT.outcomes}
        assert len(totals) == 1
        assert totals == {FAST["activations"]}

    def test_exact_designs_conserve_counters(self):
        exact = [o for o in REPORT.outcomes if o.design in EXACT_DESIGNS]
        assert len(exact) == len(EXACT_DESIGNS) >= 6
        for outcome in exact:
            assert outcome.counter_mismatches == []
            assert outcome.stats_conserved


class TestSeededStreams:
    def test_targets_are_seed_deterministic(self):
        a = make_targets(42, banks=4, rows=512, activations=5_000)
        b = make_targets(42, banks=4, rows=512, activations=5_000)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_targets(1, banks=4, rows=512, activations=5_000)
        b = make_targets(2, banks=4, rows=512, activations=5_000)
        assert a != b

    def test_targets_stay_in_geometry(self):
        for bank, row in make_targets(7, banks=2, rows=64,
                                      activations=2_000):
            assert 0 <= bank < 2
            assert 0 <= row < 64


class TestAuditorHasTeeth:
    """A conservation check that can't fail proves nothing; corrupt one
    side and make sure the mismatch surfaces."""

    GEO = dict(banks=2, rows=64, refresh_groups=8)

    def drive(self, auditor, policy, acts):
        for bank, row in acts:
            auditor.on_activate(bank, row)
            decision = policy.on_activate(bank, row, 0)
            policy.on_precharge(bank, row, 0, decision.counter_update)

    def test_agrees_with_an_honest_policy(self):
        auditor = CounterConservationAuditor(**self.GEO)
        policy = PRACMoatPolicy(500, **self.GEO)
        self.drive(auditor, policy, [(0, 5)] * 20 + [(1, 9)] * 7)
        assert auditor.mismatches(policy) == []

    def test_detects_a_corrupted_policy_counter(self):
        auditor = CounterConservationAuditor(**self.GEO)
        policy = PRACMoatPolicy(500, **self.GEO)
        self.drive(auditor, policy, [(0, 5)] * 20)
        policy.state.counters[0][5] += 3  # simulate a lost-update bug
        bad = auditor.mismatches(policy)
        assert bad
        bank, row, shadow, got = bad[0]
        assert (bank, row) == (0, 5)
        assert got == shadow + 3

    def test_detects_a_missed_shadow_update(self):
        auditor = CounterConservationAuditor(**self.GEO)
        policy = PRACMoatPolicy(500, **self.GEO)
        self.drive(auditor, policy, [(0, 5)] * 20)
        auditor.on_activate(0, 5)  # shadow drifts ahead by one
        bad = auditor.mismatches(policy)
        assert [(b, r) for b, r, _, _ in bad] == [(0, 5)]

    def test_mitigation_semantics_reset_plus_blast_radius(self):
        auditor = CounterConservationAuditor(**self.GEO)
        for _ in range(10):
            auditor.on_activate(0, 10)
        auditor.on_mitigation(0, 10)
        assert auditor.counts[0][10] == 0
        for offset in range(1, BLAST_RADIUS + 1):
            assert auditor.counts[0][10 - offset] == 1
            assert auditor.counts[0][10 + offset] == 1

    def test_refresh_clears_groups_round_robin(self):
        auditor = CounterConservationAuditor(banks=1, rows=64,
                                             refresh_groups=8)
        for row in range(64):
            auditor.on_activate(0, row)
        auditor.on_refresh()  # clears rows 0..7
        assert not auditor.counts[0][:8].any()
        assert auditor.counts[0][8:].all()


class TestDriftTelemetry:
    """Exact designs must track truth perfectly; sampled designs may
    drift but only within the configured bound."""

    def test_exact_designs_have_zero_drift(self):
        for outcome in REPORT.outcomes:
            if outcome.design in EXACT_DESIGNS:
                assert outcome.drift_max == 0, outcome.design
                assert outcome.drift_total == 0, outcome.design

    def test_sampled_designs_drift_but_stay_bounded(self):
        sampled = [o for o in REPORT.outcomes
                   if o.design in ("mopac-c", "mopac-d")]
        assert sampled
        for outcome in sampled:
            assert outcome.drift_total > 0, outcome.design
            assert outcome.drift_max <= FAST["trh"], outcome.design
        assert REPORT.ok, REPORT.describe()

    def test_tiny_drift_bound_surfaces_as_failure(self):
        report = run_differential(**FAST, seed=0xD1FF, drift_bound=0,
                                  designs=("mopac-c",))
        assert not report.ok
        assert any("drift" in failure for failure in report.failures)

    def test_drift_appears_in_describe(self):
        report = run_differential(trh=500, activations=10_000, banks=2,
                                  rows=128, refresh_groups=16, seed=3,
                                  designs=("prac",))
        assert "drift_max=0" in report.describe()


class TestReportShape:
    def test_failure_is_reported_not_raised(self):
        # an undersized threshold makes MoPAC-C's sampling insufficient
        # only if the stream actually overwhelms it; instead corrupt the
        # report path directly: restrict to one design and check fields
        report = run_differential(trh=500, activations=10_000, banks=2,
                                  rows=128, refresh_groups=16, seed=3,
                                  designs=("prac",))
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.design == "prac"
        assert outcome.total_activations == 10_000
        assert "OK" in report.describe()
