"""The pinned per-mitigation seed corpora replay clean, bit-for-bit."""

from pathlib import Path

import pytest

from repro.check.corpus import (CorpusCase, census, load_corpus,
                                replay_corpus_case, run_corpus)
from repro.mitigations import registry

CORPUS_ROOT = Path(__file__).parent / "seeds"

CASES = load_corpus(CORPUS_ROOT)


class TestCorpusShape:
    def test_corpus_exists_and_loads(self):
        assert CASES, "seed corpus is empty"

    def test_every_registered_design_has_cases(self):
        covered = {c.design for c in CASES}
        assert covered == set(registry.names())

    def test_exact_recovery_designs_pin_rfm_coverage(self):
        # the whole point of the corpus: the exact PRAC family must
        # replay at least one ALERT/RFM recovery scenario each
        for design in ("prac", "moat", "cnc-prac", "practical"):
            rfms = [c.expect.get("RFM", 0) for c in CASES
                    if c.design == design]
            assert max(rfms) > 0, f"{design} corpus has no RFM case"

    def test_queue_designs_pin_mitigation_coverage(self):
        for design in ("qprac", "qprac-proactive", "mint", "pride"):
            mits = [c.expect.get("MITIGATE", 0) for c in CASES
                    if c.design == design]
            assert max(mits) > 0, f"{design} corpus has no MITIGATE case"

    def test_census_helper_shape(self):
        counts = census([])
        assert counts["events"] == 0
        assert set(counts) > {"ACT", "RFM", "ALERT", "MITIGATE"}


@pytest.mark.parametrize("entry", CASES, ids=lambda c: c.label)
def test_corpus_case_replays_clean(entry):
    events_checked, failures = replay_corpus_case(entry)
    assert not failures, failures
    assert events_checked == entry.expect["events"]


class TestCorpusRunner:
    def test_missing_root_skips(self):
        report = run_corpus(CORPUS_ROOT / "does-not-exist")
        assert report.skipped and report.ok
        assert "skipped" in report.describe()

    def test_census_drift_is_reported(self):
        base = CASES[0]
        tampered = CorpusCase(
            design=base.design, master_seed=base.master_seed,
            index=base.index,
            expect={**base.expect, "ACT": base.expect["ACT"] + 1})
        _, failures = replay_corpus_case(tampered)
        assert failures and "census drift" in failures[0]

    def test_design_drift_is_reported(self):
        base = CASES[0]
        other = next(c for c in CASES if c.design != base.design)
        tampered = CorpusCase(
            design=other.design, master_seed=base.master_seed,
            index=base.index, expect=dict(base.expect))
        _, failures = replay_corpus_case(tampered)
        assert failures and "regenerate the corpus" in failures[0]
