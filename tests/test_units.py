"""Time-unit arithmetic."""

import pytest

from repro import units


class TestConversions:
    def test_ns_roundtrip(self):
        assert units.to_ns(units.ns(14)) == 14

    def test_fractional_ns(self):
        assert units.ns(2.667) == 2667

    def test_us_ms(self):
        assert units.us(1) == 1_000_000
        assert units.ms(1) == 10 ** 9
        assert units.to_us(units.us(3.5)) == pytest.approx(3.5)
        assert units.to_ms(units.ms(32)) == 32

    def test_hierarchy(self):
        assert units.NS == 1000 * units.PS
        assert units.US == 1000 * units.NS
        assert units.MS == 1000 * units.US
        assert units.SECOND == 1000 * units.MS

    def test_integer_results(self):
        assert isinstance(units.ns(14.5), int)

    def test_mttf_constant(self):
        # 10,000 years in nanoseconds, as used by paper Eq. 3
        assert units.NS_PER_10K_YEARS == pytest.approx(3.2e20, rel=0.02)


class TestRounding:
    def test_round_not_truncate(self):
        assert units.ns(0.9999) == 1000  # not 999
