"""Deterministic RNG streams."""

import itertools

from repro.rng import RngFactory, bernoulli_iter, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_master_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_64_bit(self):
        assert 0 <= derive_seed(1, "x") < 2 ** 64


class TestRngFactory:
    def test_same_name_same_sequence(self):
        factory = RngFactory(1)
        a = [factory.stream("s").random() for _ in range(3)]
        b = [factory.stream("s").random() for _ in range(3)]
        assert a == b

    def test_streams_independent(self):
        factory = RngFactory(1)
        a = factory.stream("one")
        b = factory.stream("two")
        seq_a = [a.random() for _ in range(5)]
        seq_b = [b.random() for _ in range(5)]
        assert seq_a != seq_b

    def test_seed_for_matches_stream(self):
        factory = RngFactory(9)
        import random
        direct = random.Random(factory.seed_for("x")).random()
        assert factory.stream("x").random() == direct


class TestBernoulli:
    def test_rate(self):
        import random
        stream = bernoulli_iter(random.Random(0), 0.25)
        hits = sum(itertools.islice(stream, 8000))
        assert abs(hits / 8000 - 0.25) < 0.02

    def test_degenerate(self):
        import random
        stream = bernoulli_iter(random.Random(0), 0.0)
        assert not any(itertools.islice(stream, 100))
