"""Job model and the crash-safe JSONL journal."""

import json

import pytest

from repro.serve.jobs import (CANCELLED, DONE, QUEUED, TERMINAL, Job,
                              Journal, job_from_record, make_job,
                              next_job_id)
from repro.sim.runner import DesignPoint

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)


def points(n=2, seed=0):
    return [DesignPoint(workload="add", design="baseline", seed=seed + i,
                        **FAST) for i in range(n)]


class TestJob:
    def test_make_job_defaults(self):
        job = make_job(7, points())
        assert job.id == "job-7"
        assert job.state == QUEUED
        assert job.submitted_s > 0

    def test_public_has_no_results(self):
        job = make_job(1, points())
        job.results = ["should-not-leak"]
        doc = job.public()
        assert doc["id"] == "job-1"
        assert doc["points"] == 2
        assert "results" not in doc
        json.dumps(doc)  # must be wire-serialisable

    def test_submit_record_round_trip(self):
        job = make_job(3, points(), priority=5, timeout_s=1.5)
        back = job_from_record(job.submit_record())
        assert back.id == job.id
        assert back.points == job.points
        assert back.priority == 5
        assert back.timeout_s == 1.5
        assert back.state == QUEUED

    def test_terminal_states(self):
        assert TERMINAL == {"done", "failed", "cancelled"}


class TestNextJobId:
    def test_empty(self):
        assert next_job_id([]) == 1

    def test_continues_after_highest(self):
        assert next_job_id(["job-2", "job-9", "job-4"]) == 10

    def test_ignores_unparseable_ids(self):
        assert next_job_id(["job-x", "weird", "job-3"]) == 4


class TestJournal:
    def test_load_missing_file(self, tmp_path):
        assert Journal.load(tmp_path / "nope.jsonl") == []

    def test_submit_then_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        a, b = make_job(1, points()), make_job(2, points(seed=10))
        journal.record_submit(a)
        journal.record_submit(b)
        journal.record_state(a.id, DONE)
        journal.close()
        pending = Journal.load(path)
        assert [job.id for job in pending] == ["job-2"]
        assert pending[0].points == b.points

    def test_only_terminal_states_journaled(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError):
            journal.record_state("job-1", "running")
        journal.close()

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        job = make_job(1, points())
        journal.record_submit(job)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "submit", "id": "job-2", "poi')
        pending = Journal.load(path)
        assert [j.id for j in pending] == ["job-1"]

    def test_unknown_op_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"op": "frobnicate", "id": "job-1"}\n')
        assert Journal.load(path) == []

    def test_cancelled_is_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        job = make_job(1, points())
        journal.record_submit(job)
        journal.record_state(job.id, CANCELLED, "client request")
        journal.close()
        assert Journal.load(path) == []

    def test_compact_keeps_only_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        jobs = [make_job(i, points(seed=i * 10)) for i in (1, 2, 3)]
        for job in jobs:
            journal.record_submit(job)
        journal.record_state("job-2", DONE)
        journal.close()

        pending = Journal.load(path)
        Journal.compact(path, pending)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["id"] for line in lines] == \
            ["job-1", "job-3"]
        # compacted journal replays identically
        assert [j.id for j in Journal.load(path)] == ["job-1", "job-3"]

    def test_compact_crash_before_replace_preserves_journal(
            self, tmp_path, monkeypatch):
        # fault injection: die between the temp-file fsync and the
        # rename — the live journal must be untouched and the temp
        # file cleaned up
        import repro.serve.jobs as jobs_mod
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record_submit(make_job(1, points()))
        journal.close()
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(jobs_mod.os, "replace", explode)
        with pytest.raises(OSError):
            Journal.compact(path, Journal.load(path))
        assert path.read_bytes() == before
        assert [j.id for j in Journal.load(path)] == ["job-1"]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_compact_fsyncs_data_then_renames_then_fsyncs_dir(
            self, tmp_path, monkeypatch):
        # durability ordering: file fsync -> os.replace -> dir fsync;
        # a dir fsync before the rename would not cover it, and a
        # missing one leaves the rename volatile
        import repro.serve.jobs as jobs_mod
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record_submit(make_job(1, points()))
        journal.close()

        calls = []
        real_fsync, real_replace = jobs_mod.os.fsync, jobs_mod.os.replace
        monkeypatch.setattr(
            jobs_mod.os, "fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            jobs_mod.os, "replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b))[1])
        Journal.compact(path, Journal.load(path))
        assert calls == ["fsync", "replace", "fsync"]

    def test_compact_survives_unfsyncable_directory(
            self, tmp_path, monkeypatch):
        # platforms that refuse to open a directory for fsync degrade
        # gracefully: compaction still succeeds
        import repro.serve.jobs as jobs_mod
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record_submit(make_job(1, points()))
        journal.close()

        real_open = jobs_mod.os.open

        def no_dir_open(target, flags, *args):
            if str(target) == str(tmp_path):
                raise OSError("directories not openable here")
            return real_open(target, flags, *args)

        monkeypatch.setattr(jobs_mod.os, "open", no_dir_open)
        Journal.compact(path, Journal.load(path))
        assert [j.id for j in Journal.load(path)] == ["job-1"]

    def test_append_after_compact(self, tmp_path):
        # the normal startup sequence: load, compact, reopen, append
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record_submit(make_job(1, points()))
        journal.close()
        Journal.compact(path, Journal.load(path))
        journal = Journal(path)
        journal.record_submit(make_job(2, points(seed=5)))
        journal.close()
        assert [j.id for j in Journal.load(path)] == ["job-1", "job-2"]
