"""Serve results are clock-independent.

The daemon legitimately reads wall clocks — job lifecycle stamps,
queue/submit spans, the latency histogram — and each site carries a
``# repro: allow(determinism)`` waiver claiming the value never reaches
a result payload or cache key. This test backs the waivers: two runs of
the same job under wildly different (and differently *skewed*) clocks
must produce byte-identical results and cache keys, while the lifecycle
stamps visibly absorb the skew.
"""

import asyncio
import json
from unittest import mock

from repro.exec.cache import point_key

from .test_server import call, point, run_scenario


def run_submission(tmp_path, wall_offset_s):
    """One submit→wait→fetch cycle with both server clocks skewed."""
    import time
    real_time, real_perf_ns = time.time, time.perf_counter_ns
    captured = {}

    def skewed_time():
        return real_time() + wall_offset_s

    def skewed_perf_ns():
        return real_perf_ns() + int(wall_offset_s * 1e9)

    async def scenario(server, client):
        job_id = await call(client.submit, [point(0), point(1)])
        status = await call(client.wait, job_id, 10.0)
        assert status["state"] == "done"
        captured["status"] = status
        captured["results"] = await call(client.result, job_id, False)
        captured["keys"] = [point_key(p) for p in (point(0), point(1))]

    with mock.patch("repro.serve.server.time.time", skewed_time), \
            mock.patch("repro.serve.server.time.perf_counter_ns",
                       skewed_perf_ns), \
            mock.patch("repro.serve.jobs.time.time", skewed_time):
        run_scenario(tmp_path / f"skew{wall_offset_s}", scenario)
    return captured


def test_results_identical_under_skewed_clocks(tmp_path):
    baseline = run_submission(tmp_path, 0.0)
    skewed = run_submission(tmp_path, 86_400.0)  # a day in the future

    # the deliverables are byte-identical...
    assert json.dumps(baseline["results"], sort_keys=True) \
        == json.dumps(skewed["results"], sort_keys=True)
    assert baseline["keys"] == skewed["keys"]

    # ...while the clock-derived bookkeeping visibly moved, proving the
    # skew actually reached the server's clock reads
    delta = skewed["status"]["submitted_s"] - baseline["status"]["submitted_s"]
    assert delta > 80_000


def test_status_document_isolates_clock_fields(tmp_path):
    # the only clock-bearing fields in a job document are the lifecycle
    # stamps; everything else must be clock-free — new fields that leak
    # a timestamp should trip this inventory
    captured = run_submission(tmp_path, 0.0)
    clock_fields = {"submitted_s", "started_s", "finished_s"}
    durations = {"timeout_s"}  # relative, not a clock reading
    document = captured["status"]
    assert clock_fields <= set(document)
    for field in sorted(set(document) - clock_fields - durations):
        assert not str(field).endswith(("_s", "_ns", "_ts")), (
            f"status field {field!r} looks clock-derived; either derive "
            f"it from simulation time or add it to the waived set here")
