"""ServeServer end-to-end over a real Unix socket, with fake workers.

The server runs in the test's event loop; the blocking ServeClient is
driven through ``asyncio.to_thread`` so both ends of the socket live in
one process. Simulations are injected closures on a thread pool, so
each test is fast and deterministic.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exec.cache import point_key
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Journal
from repro.serve.server import ServeServer
from repro.sim.runner import DesignPoint

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)


def point(seed=0):
    return DesignPoint(workload="add", design="baseline", seed=seed,
                       **FAST)


class StubCache:
    """In-memory ResultCache stand-in with the server-facing surface."""

    def __init__(self):
        self.store = {}
        self.directory = "<memory>"

    def get(self, p):
        return self.store.get(point_key(p))

    def put(self, p, result):
        self.store[point_key(p)] = result

    def register_stats(self, registry, prefix="exec.cache"):
        registry.register(prefix, lambda: {"entries": len(self.store)})


def make_server(tmp_path, simulate_fn, **kwargs):
    kwargs.setdefault("cache", StubCache())
    kwargs.setdefault("encoder", lambda r: r)
    kwargs.setdefault("workers", 2)
    return ServeServer(
        state_dir=tmp_path / "state",
        address=f"unix:{tmp_path / 'serve.sock'}",
        simulate_fn=simulate_fn,
        executor_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        **kwargs)


def run_scenario(tmp_path, scenario, simulate_fn=None, **kwargs):
    """Boot a server, run ``scenario(server, client)``, drain cleanly."""
    simulate_fn = simulate_fn or (lambda q: ({"seed": q.seed}, 0.001))

    async def main():
        server = make_server(tmp_path, simulate_fn, **kwargs)
        ready = asyncio.Event()
        run_task = asyncio.ensure_future(server.run(on_ready=ready.set))
        await asyncio.wait_for(ready.wait(), 10)
        client = ServeClient(server.address, timeout_s=10.0)
        try:
            await scenario(server, client)
        finally:
            server.request_drain()
            assert await asyncio.wait_for(run_task, 10) == 0
        return server

    return asyncio.run(main())


def call(fn, *args, **kwargs):
    return asyncio.to_thread(fn, *args, **kwargs)


class TestSubmitRoundTrip:
    def test_submit_wait_result(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point(0), point(1)])
            assert job_id == "job-1"
            status = await call(client.wait, job_id, 10.0)
            assert status["state"] == "done"
            assert status["error"] is None
            results = await call(client.result, job_id, False)
            assert results == [{"seed": 0}, {"seed": 1}]

        run_scenario(tmp_path, scenario)

    def test_overlapping_jobs_share_executions(self, tmp_path):
        release = threading.Event()
        calls = []

        def sim(q):
            calls.append(q.seed)
            release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            first = await call(client.submit, [point(0)])
            second = await call(client.submit, [point(0)])
            await asyncio.sleep(0.1)  # both jobs reach the runner
            release.set()
            for job_id in (first, second):
                status = await call(client.wait, job_id, 10.0)
                assert status["state"] == "done"
            stats = await call(client.stats)
            assert stats["serve.dedup_hits"] + \
                stats["serve.cache_hits"] >= 1
            assert stats["serve.points_simulated"] == 1
            assert stats["serve.jobs_completed"] == 2

        run_scenario(tmp_path, scenario, simulate_fn=sim)

    def test_status_listing_and_stats(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await call(client.wait, job_id, 10.0)
            listing = await call(client.status)
            assert [doc["id"] for doc in listing["jobs"]] == [job_id]
            health = await call(client.healthz)
            assert health["ok"] is True
            stats = await call(client.stats)
            assert stats["serve.jobs_submitted"] == 1
            assert stats["serve.queue_depth"] == 0
            assert "exec.cache.entries" in stats

        run_scenario(tmp_path, scenario)


class TestValidation:
    def test_bad_point_rejected(self, tmp_path):
        async def scenario(server, client):
            with pytest.raises(ServeError) as info:
                await call(client.submit,
                           [{"workload": "add", "no_such_field": 1}])
            assert info.value.status == 400

        run_scenario(tmp_path, scenario)

    def test_bad_submit_bodies_rejected(self, tmp_path):
        def point_fields():
            import dataclasses
            return dataclasses.asdict(point())

        async def scenario(server, client):
            status, _ = await call(client.request, "POST", "/submit",
                                   {"points": []})
            assert status == 400
            status, _ = await call(client.request, "POST", "/submit",
                                   {"points": [point_fields()],
                                    "priority": "high"})
            assert status == 400
            status, _ = await call(client.request, "POST", "/submit",
                                   {"points": [point_fields()],
                                    "timeout_s": -1})
            assert status == 400

        run_scenario(tmp_path, scenario)

    def test_unknown_endpoints_and_jobs(self, tmp_path):
        async def scenario(server, client):
            status, _ = await call(client.request, "POST", "/frobnicate")
            assert status == 404
            status, _ = await call(client.request, "GET",
                                   "/status?id=job-99")
            assert status == 404
            status, _ = await call(client.request, "GET", "/result")
            assert status == 400
            status, _ = await call(client.request, "GET", "/submit")
            assert status == 405

        run_scenario(tmp_path, scenario)


class TestResultStates:
    def test_result_conflict_while_running(self, tmp_path):
        release = threading.Event()

        def sim(q):
            release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await asyncio.sleep(0.05)
            status, doc = await call(client.request, "GET",
                                     f"/result?id={job_id}")
            assert status == 409
            assert doc["state"] in ("queued", "running")
            release.set()
            await call(client.wait, job_id, 10.0)
            results = await call(client.result, job_id, False)
            assert results == [{"seed": 0}]

        run_scenario(tmp_path, scenario, simulate_fn=sim)

    def test_failed_job_reports_error(self, tmp_path):
        def sim(q):
            raise ValueError("synthetic failure")

        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            status = await call(client.wait, job_id, 10.0)
            assert status["state"] == "failed"
            assert "ValueError" in status["error"]
            http_status, doc = await call(client.request, "GET",
                                          f"/result?id={job_id}")
            assert http_status == 409
            stats = await call(client.stats)
            assert stats["serve.jobs_failed"] == 1

        run_scenario(tmp_path, scenario, simulate_fn=sim)

    def test_job_timeout_fails_job(self, tmp_path):
        release = threading.Event()

        def sim(q):
            release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            job_id = await call(client.submit, [point()],
                                timeout_s=0.05)
            status = await call(client.wait, job_id, 10.0)
            assert status["state"] == "failed"
            assert "timeout" in status["error"]
            release.set()  # unblock the worker so drain is clean

        run_scenario(tmp_path, scenario, simulate_fn=sim)


class TestCancelAndPriority:
    def test_cancel_queued_job(self, tmp_path):
        release = threading.Event()

        def sim(q):
            release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            blocker = await call(client.submit, [point(0)])
            queued = await call(client.submit, [point(1)])
            await asyncio.sleep(0.05)
            doc = await call(client.cancel, queued)
            assert doc["state"] == "cancelled"
            release.set()
            assert (await call(client.wait, blocker, 10.0))["state"] \
                == "done"
            stats = await call(client.stats)
            assert stats["serve.jobs_cancelled"] == 1

        run_scenario(tmp_path, scenario, simulate_fn=sim, max_jobs=1)

    def test_cancel_unknown_job(self, tmp_path):
        async def scenario(server, client):
            status, _ = await call(client.request, "POST", "/cancel",
                                   {"id": "job-99"})
            assert status == 404

        run_scenario(tmp_path, scenario)

    def test_priority_dispatch_order(self, tmp_path):
        release = threading.Event()
        order = []

        def sim(q):
            order.append(q.seed)
            if q.seed == 0:
                release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            blocker = await call(client.submit, [point(0)])
            await asyncio.sleep(0.05)  # blocker occupies the one slot
            low = await call(client.submit, [point(1)], 0)
            high = await call(client.submit, [point(2)], 5)
            await asyncio.sleep(0.05)
            release.set()
            for job_id in (blocker, low, high):
                assert (await call(client.wait, job_id, 10.0))["state"] \
                    == "done"
            assert order == [0, 2, 1]  # high priority jumps the queue

        run_scenario(tmp_path, scenario, simulate_fn=sim, max_jobs=1)


class TestDrainAndRestart:
    def test_submit_refused_while_draining(self, tmp_path):
        release = threading.Event()

        def sim(q):
            release.wait(5)
            return {"seed": q.seed}, 0.001

        async def scenario(server, client):
            await call(client.submit, [point(0)])
            await asyncio.sleep(0.05)
            doc = await call(client.shutdown)
            assert doc["draining"] is True
            status, doc = await call(
                client.request, "POST", "/submit",
                {"points": [__import__("dataclasses").asdict(point(1))]})
            assert status == 503
            release.set()

        run_scenario(tmp_path, scenario, simulate_fn=sim, drain_s=10.0)

    def test_restart_resumes_journaled_jobs(self, tmp_path):
        gate = threading.Event()

        def slow_sim(q):
            gate.wait(1.0)
            return {"seed": q.seed}, 0.001

        async def first_run():
            server = make_server(tmp_path, slow_sim, max_jobs=1,
                                 drain_s=0.05)
            ready = asyncio.Event()
            run_task = asyncio.ensure_future(
                server.run(on_ready=ready.set))
            await asyncio.wait_for(ready.wait(), 10)
            client = ServeClient(server.address, timeout_s=10.0)
            ids = [await call(client.submit, [point(i)])
                   for i in (0, 1)]
            server.request_drain()
            assert await asyncio.wait_for(run_task, 10) == 0
            return ids

        job_ids = asyncio.run(first_run())
        pending = Journal.load(tmp_path / "state" / "journal.jsonl")
        assert {job.id for job in pending} == set(job_ids)

        async def second_run():
            server = make_server(
                tmp_path, lambda q: ({"seed": q.seed}, 0.001))
            ready = asyncio.Event()
            run_task = asyncio.ensure_future(
                server.run(on_ready=ready.set))
            await asyncio.wait_for(ready.wait(), 10)
            client = ServeClient(server.address, timeout_s=10.0)
            try:
                for index, job_id in enumerate(job_ids):
                    status = await call(client.wait, job_id, 10.0)
                    assert status["state"] == "done"
                    results = await call(client.result, job_id, False)
                    assert results == [{"seed": index}]
                stats = await call(client.stats)
                assert stats["serve.jobs_resumed"] == len(job_ids)
                # new ids keep counting past the resumed ones
                fresh = await call(client.submit, [point(7)])
                assert fresh == f"job-{len(job_ids) + 1}"
                await call(client.wait, fresh, 10.0)
            finally:
                server.request_drain()
                assert await asyncio.wait_for(run_task, 10) == 0

        asyncio.run(second_run())
        assert Journal.load(tmp_path / "state" / "journal.jsonl") == []


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, tmp_path):
        from repro.obs.exposition import parse_prometheus

        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await call(client.wait, job_id, 10.0)
            content_type, text = await call(client.metrics_text)
            assert "version=0.0.4" in content_type
            parsed = parse_prometheus(text)
            assert parsed["repro_serve_jobs_completed"] == 1
            assert "repro_exec_cache_entries" in parsed
            assert "repro_serve_queue_depth" in parsed

        run_scenario(tmp_path, scenario)

    def test_json_format_carries_series(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await call(client.wait, job_id, 10.0)
            await asyncio.sleep(0.15)  # let the sampler tick
            doc = await call(client.metrics)
            assert set(doc) == {"stats", "series"}
            assert doc["stats"]["serve.jobs_completed"] == 1
            series = doc["series"]
            assert series["interval_s"] == 0.05
            names = set(series["series"])
            assert {"serve.queue_depth", "serve.jobs_per_s",
                    "serve.pool.cache_hit_rate"} <= names
            depth = series["series"]["serve.queue_depth"]
            assert depth["samples"] >= 1
            assert depth["values"][-1] == 0.0

        run_scenario(tmp_path, scenario, metrics_interval_s=0.05)

    def test_unknown_format_rejected(self, tmp_path):
        async def scenario(server, client):
            status, _, raw = await call(client.request_raw, "GET",
                                        "/metrics?format=xml")
            assert status == 400
            assert b"unknown metrics format" in raw

        run_scenario(tmp_path, scenario)

    def test_bad_metrics_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_server(tmp_path, lambda q: ({}, 0.0),
                        metrics_interval_s=0)


class TestStatsPayload:
    def test_stats_is_json_with_cache_family(self, tmp_path):
        import json

        async def scenario(server, client):
            status, content_type, raw = await call(
                client.request_raw, "GET", "/stats")
            assert status == 200
            assert content_type.startswith("application/json")
            doc = json.loads(raw)
            assert doc["exec.cache.entries"] == 0
            assert doc["serve.pool.workers"] == 2
            # every value in the flattened snapshot is numeric
            assert all(isinstance(v, (int, float))
                       for v in doc.values())

        run_scenario(tmp_path, scenario)

    def test_concurrent_stats_requests(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await call(client.wait, job_id, 10.0)
            docs = await asyncio.gather(
                *[call(client.stats) for _ in range(8)])
            for doc in docs:
                assert doc["serve.jobs_completed"] == 1
                assert doc["exec.cache.entries"] == 1

        run_scenario(tmp_path, scenario)


class TestSpansEndpoint:
    def test_job_lifecycle_span_tree(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point(0), point(1)])
            await call(client.wait, job_id, 10.0)
            doc = await call(client.spans)
            assert doc["dropped"] == 0
            spans = doc["spans"]
            by_id = {s["id"]: s for s in spans}
            (root,) = [s for s in spans if s["name"] == "serve.job"]
            assert root["attrs"]["job_id"] == job_id
            assert root["attrs"]["state"] == "done"
            children = {s["name"] for s in spans
                        if s["parent"] == root["id"]}
            assert {"serve.submit", "serve.queue",
                    "serve.execute"} <= children
            points = [s for s in spans if s["name"] == "serve.point"]
            assert len(points) == 2
            for record in points:
                assert by_id[record["parent"]]["name"] == "serve.execute"
                assert record["attrs"]["key"]

        run_scenario(tmp_path, scenario)

    def test_name_filter(self, tmp_path):
        async def scenario(server, client):
            job_id = await call(client.submit, [point()])
            await call(client.wait, job_id, 10.0)
            doc = await call(client.spans, "serve.point")
            assert doc["spans"]
            assert {s["name"] for s in doc["spans"]} == {"serve.point"}

        run_scenario(tmp_path, scenario)
