"""Jittered exponential poll backoff in ServeClient.wait."""

import itertools

import pytest

from repro.serve.client import ServeClient, poll_delays, poll_jitter


class TestPollJitter:
    def test_bounded(self):
        for attempt in range(200):
            factor = poll_jitter("job-1", attempt)
            assert 0.75 <= factor <= 1.25

    def test_deterministic(self):
        assert poll_jitter("job-1", 3) == poll_jitter("job-1", 3)

    def test_tokens_desynchronise(self):
        # different jobs polling together must not tick in lockstep
        a = [poll_jitter("job-a", n) for n in range(8)]
        b = [poll_jitter("job-b", n) for n in range(8)]
        assert a != b

    def test_no_global_rng_touched(self):
        import random
        state = random.getstate()
        poll_jitter("job-1", 0)
        assert random.getstate() == state


class TestPollDelays:
    def test_doubles_up_to_the_cap(self):
        raw = [delay / poll_jitter("t", n) for n, delay in
               enumerate(itertools.islice(poll_delays("t", 0.1, 5.0),
                                          10))]
        assert raw[:6] == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6, 3.2])
        assert raw[6:] == pytest.approx([5.0] * 4)  # capped, stays put

    def test_huge_attempt_counts_do_not_overflow(self):
        delays = poll_delays("t", 0.1, 5.0)
        last = [next(delays) for _ in range(100)][-1]
        assert last <= 5.0 * 1.25

    def test_cap_bounds_poll_traffic(self):
        # a 600 s wait at cap 5 s costs ~ the backoff ramp + T/cap
        # polls — two orders of magnitude under fixed 0.1 s polling
        total, polls = 0.0, 0
        for delay in poll_delays("t", 0.1, 5.0):
            total += delay
            polls += 1
            if total >= 600.0:
                break
        assert polls <= 135


class FakeTransport(ServeClient):
    """ServeClient with a scripted status endpoint (no sockets)."""

    def __init__(self, states):
        super().__init__("unix:/nonexistent.sock")
        self.states = iter(states)
        self.polls = 0

    def status(self, job_id):
        self.polls += 1
        return {"state": next(self.states)}


class TestWaitBackoff:
    @pytest.fixture
    def clock(self, monkeypatch):
        """Virtual time: _sleep advances, _now reads."""
        state = {"now": 0.0, "slept": []}
        monkeypatch.setattr("repro.serve.client._now",
                            lambda: state["now"])

        def sleep(seconds):
            state["slept"].append(seconds)
            state["now"] += seconds
        monkeypatch.setattr("repro.serve.client._sleep", sleep)
        return state

    def test_returns_on_terminal_state(self, clock):
        client = FakeTransport(["queued", "running", "done"])
        document = client.wait("job-1", timeout_s=600.0)
        assert document["state"] == "done"
        assert client.polls == 3

    def test_sleeps_follow_the_backoff_schedule(self, clock):
        client = FakeTransport(["running"] * 10 + ["done"])
        client.wait("job-1", timeout_s=600.0, poll_s=0.1, max_poll_s=5.0)
        expected = list(itertools.islice(
            poll_delays("job-1", 0.1, 5.0), 10))
        assert clock["slept"] == pytest.approx(expected)

    def test_poll_count_is_logarithmic_not_linear(self, clock):
        # a job finishing at t=600 s: fixed 0.1 s polling would issue
        # 6000 status calls; backoff must stay within ~ramp + T/cap
        client = FakeTransport(itertools.chain(
            itertools.repeat("running", 10_000)))
        with pytest.raises(TimeoutError):
            client.wait("job-1", timeout_s=600.0, poll_s=0.1,
                        max_poll_s=5.0)
        assert client.polls <= 140

    def test_timeout_is_honoured(self, clock):
        client = FakeTransport(itertools.repeat("running"))
        with pytest.raises(TimeoutError, match="not finished after"):
            client.wait("job-1", timeout_s=3.0)
        assert clock["now"] <= 3.0 + 5.0  # never sleeps past deadline

    def test_final_sleep_clamped_to_deadline(self, clock):
        client = FakeTransport(itertools.repeat("running"))
        with pytest.raises(TimeoutError):
            client.wait("job-1", timeout_s=2.0, poll_s=0.1,
                        max_poll_s=60.0)
        # no single sleep may overshoot the remaining budget
        assert all(s <= 2.0 for s in clock["slept"])
