"""PointRunner: cache short-circuit, dedup, crash retries, shielding.

These tests inject a thread-pool executor and closure simulate
functions, so nothing here forks a process or runs a real simulation.
"""

import asyncio
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.exec.cache import point_key
from repro.obs.registry import StatsRegistry
from repro.serve.pool import PointFailed, PointRunner
from repro.sim.runner import DesignPoint

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)


def point(seed=0):
    return DesignPoint(workload="add", design="baseline", seed=seed,
                       **FAST)


class StubCache:
    """In-memory stand-in for ResultCache (get/put/register_stats)."""

    def __init__(self, preloaded=None):
        self.store = dict(preloaded or {})
        self.puts = []

    def get(self, p):
        return self.store.get(point_key(p))

    def put(self, p, result):
        self.store[point_key(p)] = result
        self.puts.append(p)

    def register_stats(self, registry, prefix="exec.cache"):
        registry.register(prefix, lambda: {"entries": len(self.store)})


def make_runner(simulate_fn, cache=None, workers=2, **kwargs):
    registry = StatsRegistry()
    runner = PointRunner(
        workers=workers, cache=cache, registry=registry,
        simulate_fn=simulate_fn,
        executor_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        **kwargs)
    return runner, registry


def run(coro):
    return asyncio.run(coro)


class TestCacheShortCircuit:
    def test_hit_skips_simulation(self):
        p = point()
        cache = StubCache({point_key(p): {"cached": True}})
        calls = []
        runner, registry = make_runner(
            lambda q: calls.append(q) or ({"fresh": True}, 0.001),
            cache=cache)

        async def go():
            return await runner.resolve(p)

        assert run(go()) == {"cached": True}
        assert calls == []
        stats = registry.snapshot()
        assert stats["serve.cache_hits"] == 1
        assert stats["serve.points_simulated"] == 0

    def test_miss_simulates_and_writes_back(self):
        p = point()
        cache = StubCache()
        runner, registry = make_runner(
            lambda q: ({"seed": q.seed}, 0.001), cache=cache)

        async def go():
            return await runner.resolve(p)

        assert run(go()) == {"seed": 0}
        assert cache.store[point_key(p)] == {"seed": 0}
        stats = registry.snapshot()
        assert stats["serve.cache_misses"] == 1
        assert stats["serve.points_simulated"] == 1
        assert stats["exec.cache.entries"] == 1


class TestInflightDedup:
    def test_concurrent_resolves_share_one_execution(self):
        release = threading.Event()
        calls = []

        def sim(q):
            calls.append(q)
            release.wait(5)
            return {"seed": q.seed}, 0.001

        runner, registry = make_runner(sim, cache=StubCache())
        p = point()

        async def go():
            first = asyncio.ensure_future(runner.resolve(p))
            await asyncio.sleep(0.02)  # first registers its execution
            second = asyncio.ensure_future(runner.resolve(p))
            await asyncio.sleep(0.02)
            release.set()
            return await asyncio.gather(first, second)

        results = run(go())
        assert results[0] == results[1] == {"seed": 0}
        assert len(calls) == 1
        stats = registry.snapshot()
        assert stats["serve.dedup_hits"] == 1
        assert stats["serve.points_simulated"] == 1

    def test_distinct_points_do_not_dedup(self):
        runner, registry = make_runner(
            lambda q: ({"seed": q.seed}, 0.001), cache=StubCache())

        async def go():
            return await asyncio.gather(runner.resolve(point(0)),
                                        runner.resolve(point(1)))

        assert run(go()) == [{"seed": 0}, {"seed": 1}]
        assert registry.snapshot()["serve.dedup_hits"] == 0

    def test_cancelled_waiter_does_not_kill_shared_execution(self):
        release = threading.Event()
        calls = []

        def sim(q):
            calls.append(q)
            release.wait(5)
            return {"seed": q.seed}, 0.001

        runner, registry = make_runner(sim, cache=StubCache())
        p = point()

        async def go():
            first = asyncio.ensure_future(runner.resolve(p))
            await asyncio.sleep(0.02)
            second = asyncio.ensure_future(runner.resolve(p))
            await asyncio.sleep(0.02)
            first.cancel()
            await asyncio.sleep(0.02)
            release.set()
            return await second

        assert run(go()) == {"seed": 0}
        assert len(calls) == 1


class TestWorkerCrashes:
    def test_broken_executor_retries_then_succeeds(self):
        attempts = []

        def sim(q):
            attempts.append(q)
            if len(attempts) <= 2:
                raise BrokenExecutor("worker died")
            return {"ok": True}, 0.001

        factories = []

        def factory(n):
            factories.append(n)
            return ThreadPoolExecutor(max_workers=n)

        registry = StatsRegistry()
        runner = PointRunner(workers=2, registry=registry,
                             simulate_fn=sim, executor_factory=factory,
                             max_retries=2, retry_backoff_s=0.01)

        async def go():
            return await runner.resolve(point())

        assert run(go()) == {"ok": True}
        assert len(attempts) == 3
        assert len(factories) == 3  # initial pool + one per rebuild
        stats = registry.snapshot()
        assert stats["serve.worker_restarts"] == 2
        assert stats["serve.point_retries"] == 2
        assert stats["serve.points_simulated"] == 1

    def test_retries_exhausted_raises_point_failed(self):
        def sim(q):
            raise BrokenExecutor("worker died")

        registry = StatsRegistry()
        runner = PointRunner(
            workers=1, registry=registry, simulate_fn=sim,
            executor_factory=lambda n: ThreadPoolExecutor(max_workers=n),
            max_retries=1, retry_backoff_s=0.01)

        async def go():
            return await runner.resolve(point())

        with pytest.raises(PointFailed, match="worker crashed"):
            run(go())
        stats = registry.snapshot()
        assert stats["serve.points_failed"] == 1
        assert stats["serve.worker_restarts"] == 2

    def test_deterministic_error_fails_without_retry(self):
        attempts = []

        def sim(q):
            attempts.append(q)
            raise ValueError("unknown workload")

        runner, registry = make_runner(sim, retry_backoff_s=0.01)

        async def go():
            return await runner.resolve(point())

        with pytest.raises(PointFailed, match="ValueError"):
            run(go())
        assert len(attempts) == 1  # re-running would fail the same way
        stats = registry.snapshot()
        assert stats["serve.point_retries"] == 0
        assert stats["serve.points_failed"] == 1


class TestConfig:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            PointRunner(workers=0)

    def test_shutdown_is_idempotent(self):
        runner, _ = make_runner(lambda q: ({}, 0.001))

        async def go():
            await runner.resolve(point())
            runner.shutdown()
            runner.shutdown()

        run(go())
