"""Wire format: address syntax, request parsing, response framing."""

import asyncio
import json

import pytest

from repro.serve.protocol import (MAX_BODY_BYTES, ProtocolError,
                                  error_bytes, format_address,
                                  parse_address, read_request,
                                  response_bytes)


class TestParseAddress:
    def test_unix_prefix(self):
        assert parse_address("unix:/run/serve.sock") == \
            ("unix", "/run/serve.sock")

    def test_bare_absolute_path(self):
        assert parse_address("/tmp/s.sock") == ("unix", "/tmp/s.sock")

    def test_tcp_prefix(self):
        assert parse_address("tcp:127.0.0.1:8731") == \
            ("tcp", ("127.0.0.1", 8731))

    def test_bare_host_port(self):
        assert parse_address("localhost:9000") == \
            ("tcp", ("localhost", 9000))

    def test_whitespace_stripped(self):
        assert parse_address("  unix:/a.sock \n") == ("unix", "/a.sock")

    @pytest.mark.parametrize("bad", ["", "unix:", "justahost",
                                     "host:notaport", ":8000"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_format_round_trip(self):
        for address in ["unix:/x/y.sock", "127.0.0.1:8000"]:
            kind, target = parse_address(address)
            assert parse_address(format_address(kind, target)) == \
                (kind, target)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(b"GET /status?id=job-3 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/status"
        assert request.query == {"id": "job-3"}
        assert request.body == b""
        assert request.json() == {}

    def test_post_with_body(self):
        body = json.dumps({"points": []}).encode()
        request = parse(b"POST /submit HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.method == "POST"
        assert request.json() == {"points": []}

    def test_closed_connection_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /status HTTP/1.1\r\n")

    def test_bad_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_non_http_version(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /x SPDY/9\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /submit HTTP/1.1\r\n"
                  b"Content-Length: banana\r\n\r\nxx")

    def test_oversized_body_refused(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /submit HTTP/1.1\r\n"
                  + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode())

    def test_oversized_head_refused(self):
        filler = b"X-Pad: " + b"a" * (70 * 1024) + b"\r\n"
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")

    def test_body_not_json(self):
        request = parse(b"POST /submit HTTP/1.1\r\n"
                        b"Content-Length: 3\r\n\r\n{{{")
        with pytest.raises(ProtocolError):
            request.json()


class TestResponseBytes:
    def split(self, payload: bytes):
        head, _, body = payload.partition(b"\r\n\r\n")
        return head.decode("latin-1").split("\r\n"), body

    def test_framing(self):
        lines, body = self.split(response_bytes(200, {"ok": True}))
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: close" in lines
        assert json.loads(body) == {"ok": True}

    def test_error_payload(self):
        lines, body = self.split(error_bytes(404, "unknown job"))
        assert lines[0].startswith("HTTP/1.1 404")
        assert json.loads(body) == {"error": "unknown job"}

    def test_round_trips_through_reader(self):
        # a response is itself parseable enough for the test client
        payload = response_bytes(503, {"error": "draining"})
        assert b"503 Service Unavailable" in payload
