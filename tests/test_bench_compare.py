"""The benchmark regression gate: compare.py semantics and exit codes."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from compare import compare  # noqa: E402  (path set up above)


def summary(fast_s=0.10, identical=True, workload="mix1"):
    return {
        "rows": [{"workload": workload, "design": "mopac-c",
                  "instructions": 40_000, "reference_s": 0.5,
                  "fast_s": fast_s, "speedup": 0.5 / fast_s,
                  "identical": identical}],
        "total_fast_s": fast_s,
        "total_reference_s": 0.5,
    }


class TestCompare:
    def test_equal_runs_pass(self):
        failures, notes = compare(summary(), summary(), threshold=0.10)
        assert failures == []
        assert notes  # per-row timings are reported

    def test_slowdown_within_threshold_passes(self):
        failures, _ = compare(summary(0.10), summary(0.105),
                              threshold=0.10)
        assert failures == []

    def test_slowdown_beyond_threshold_fails(self):
        failures, _ = compare(summary(0.10), summary(0.15),
                              threshold=0.10)
        assert any("fast engine" in f for f in failures)
        assert any("total" in f for f in failures)

    def test_speedup_always_passes(self):
        failures, _ = compare(summary(0.10), summary(0.01),
                              threshold=0.10)
        assert failures == []

    def test_lost_bit_identity_fails_regardless_of_speed(self):
        failures, _ = compare(summary(identical=True),
                              summary(fast_s=0.01, identical=False),
                              threshold=0.10)
        assert any("bit-identical" in f for f in failures)

    def test_disjoint_rows_noted_not_failed(self):
        failures, notes = compare(summary(workload="mix1"),
                                  summary(workload="mcf"),
                                  threshold=0.10)
        assert failures == []
        assert any("only in baseline" in n for n in notes)
        assert any("only in candidate" in n for n in notes)


class TestCommandLine:
    def run(self, tmp_path, baseline, candidate, *extra):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(baseline))
        cand.write_text(json.dumps(candidate))
        return subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "compare.py"),
             str(base), str(cand), *extra],
            capture_output=True, text=True)

    def test_pass_exits_zero(self, tmp_path):
        proc = self.run(tmp_path, summary(), summary())
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_regression_exits_one(self, tmp_path):
        proc = self.run(tmp_path, summary(0.10), summary(0.50))
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_threshold_flag_loosens_gate(self, tmp_path):
        proc = self.run(tmp_path, summary(0.10), summary(0.50),
                        "--threshold", "5.0")
        assert proc.returncode == 0

    def test_missing_file_exits_two(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "compare.py"),
             str(tmp_path / "nope.json"), str(tmp_path / "nope.json")],
            capture_output=True, text=True)
        assert proc.returncode == 2

    def test_committed_baseline_is_self_consistent(self):
        baseline_path = (REPO / "benchmarks" / "results" /
                         "BENCH_engine_smoke.json")
        if not baseline_path.exists():  # pragma: no cover
            pytest.skip("smoke baseline not generated yet")
        doc = json.loads(baseline_path.read_text())
        failures, _ = compare(doc, doc, threshold=0.0)
        assert failures == []
        assert doc["all_identical"] is True
