"""Smoke tests for the example scripts.

The fast examples run end-to-end in a subprocess; the slower ones are
exercised with reduced arguments. Examples are user-facing documentation,
so a broken example is a broken deliverable.
"""

import json
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_security_analysis(self):
        out = run_example("security_analysis.py", "500")
        assert "ATH* = 176" in out
        assert "NUP ATH* = 136" in out

    def test_security_analysis_other_threshold(self):
        out = run_example("security_analysis.py", "1000")
        assert "ATH* = 368" in out

    def test_llc_filtering(self):
        out = run_example("llc_filtering.py")
        assert "with LLC" in out
        assert "line 1 evicted:      True" in out

    def test_file_traces(self):
        out = run_example("file_traces.py")
        assert "PRAC slowdown on the replayed traces" in out

    def test_tracing_demo(self, tmp_path):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        out = run_example("tracing_demo.py", "--out", str(trace),
                          "--jsonl", str(jsonl))
        assert "ALERT=0" not in out
        assert "traced RFM events match controller stats" in out
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert any(event["name"] == "ALERT" for event in events)
        assert len(jsonl.read_text().splitlines()) == len(events)

    def test_performance_study_tiny(self):
        out = run_example("performance_study.py", "--workloads",
                          "xalancbmk", "--instructions", "8000")
        assert "PRAC vs MoPAC-C" in out
        assert "AVERAGE" in out


@pytest.mark.slow
class TestSlowExamples:
    """Full-size example runs; select with ``-m slow``."""

    def test_quickstart(self):
        out = run_example("quickstart.py", timeout=480)
        assert "DEFEATED" in out

    def test_attack_lab(self):
        out = run_example("attack_lab.py", timeout=600)
        assert "BROKEN" in out  # the insecure baselines
        assert "single-sided" in out

    def test_design_space(self):
        out = run_example("design_space.py", timeout=600)
        assert "fuzz worst" in out
