"""Trace format parsing and statistics."""

import pytest

from repro.cpu.trace import (TraceItem, parse_trace_line, read_trace,
                             trace_mpki)


class TestTraceItem:
    def test_fields(self):
        item = TraceItem(10, 0x1000, True)
        assert (item.gap, item.address, item.is_write) == (10, 0x1000, True)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            TraceItem(-1, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TraceItem(0, -1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TraceItem(0, 0).gap = 5


class TestParsing:
    def test_basic_line(self):
        assert parse_trace_line("10 4096") == TraceItem(10, 4096)

    def test_hex_address(self):
        assert parse_trace_line("3 0x1000").address == 4096

    def test_write_marker(self):
        assert parse_trace_line("3 64 W").is_write
        assert parse_trace_line("3 64 w").is_write

    def test_comments_and_blanks_skipped(self):
        assert parse_trace_line("# comment") is None
        assert parse_trace_line("   ") is None

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_trace_line("1 2 3 4")

    def test_read_trace_stream(self):
        lines = ["# header", "1 64", "", "2 128 W"]
        items = list(read_trace(lines))
        assert len(items) == 2
        assert items[1].is_write


class TestMpki:
    def test_exact_value(self):
        # 4 accesses over 4 * (249 + 1) = 1000 instructions -> MPKI 4
        items = [TraceItem(249, i * 64) for i in range(4)]
        assert trace_mpki(items) == pytest.approx(4.0)

    def test_empty_trace(self):
        assert trace_mpki([]) == 0.0
