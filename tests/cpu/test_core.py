"""ROB-window core model: dispatch pacing, MLP limits, finish times."""

import pytest

from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.cpu.trace import TraceItem


def make_core(items, limit=10**9, window=None, config=None):
    config = config or SystemConfig()
    return Core(0, iter(items), config, limit, window=window)


class TestDispatchPacing:
    def test_first_issue_time(self):
        core = make_core([TraceItem(40, 0)])
        action, when = core.next_action()
        assert action == "issue"
        # 40 instructions at 4-wide 4 GHz = 2.5 ns
        assert when == pytest.approx(40 * 62.5)

    def test_back_to_back_gap_zero(self):
        core = make_core([TraceItem(0, 0), TraceItem(0, 64)])
        action, when = core.next_action()
        core.take_request(when)
        action, when2 = core.next_action()
        assert action == "issue"
        assert when2 == pytest.approx(when)

    def test_cursor_advances_with_issue_time(self):
        core = make_core([TraceItem(0, 0), TraceItem(4, 64)])
        core.next_action()
        core.take_request(1000.0)  # system issued late (queueing)
        _, when = core.next_action()
        assert when == pytest.approx(1000.0 + 4 * 62.5)


class TestROBBlocking:
    def test_window_limits_outstanding(self):
        # gap 15 -> one miss per 16 instructions; window 64 -> 4 misses
        items = [TraceItem(15, i * 64) for i in range(20)]
        core = make_core(items, window=64)
        outstanding = 0
        while True:
            action, value = core.next_action()
            if action != "issue":
                break
            core.take_request(float(value))
            core.track(outstanding)
            outstanding += 1
        assert action == "wait"
        assert outstanding == 4
        assert value == 0  # blocked on the oldest miss

    def test_completion_unblocks(self):
        items = [TraceItem(15, i * 64) for i in range(20)]
        core = make_core(items, window=64)
        rid = 0
        while core.next_action()[0] == "issue":
            _, when = core.next_action()
            core.take_request(float(when))
            core.track(rid)
            rid += 1
        core.on_completion(0, 50_000)
        action, when = core.next_action()
        assert action == "issue"
        assert when >= 50_000

    def test_out_of_order_completion_keeps_blocking(self):
        items = [TraceItem(15, i * 64) for i in range(20)]
        core = make_core(items, window=64)
        rid = 0
        while core.next_action()[0] == "issue":
            _, when = core.next_action()
            core.take_request(float(when))
            core.track(rid)
            rid += 1
        core.on_completion(2, 10_000)  # younger miss returns first
        action, value = core.next_action()
        assert action == "wait"
        assert value == 0


class TestFinish:
    def test_finish_includes_tail_instructions(self):
        core = make_core([TraceItem(0, 0)], limit=1000)
        action, when = core.next_action()
        core.take_request(float(when))
        action, finish = core.next_action()
        assert action == "finish"
        # 999 remaining instructions at 62.5 ps each
        assert finish == pytest.approx(999 * 62.5, rel=0.01)

    def test_finish_waits_for_last_completion(self):
        core = make_core([TraceItem(0, 0)], limit=10)
        _, when = core.next_action()
        core.take_request(float(when))
        core.track(0)
        core.on_completion(0, 1_000_000)
        _, finish = core.next_action()
        assert finish >= 1_000_000

    def test_done_requires_no_outstanding(self):
        core = make_core([TraceItem(0, 0)], limit=1)
        _, when = core.next_action()
        core.take_request(float(when))
        core.track(0)
        assert not core.done
        core.on_completion(0, 100)
        assert core.done

    def test_finalize_reports_full_budget(self):
        core = make_core([TraceItem(0, 0)], limit=500)
        _, when = core.next_action()
        core.take_request(float(when))
        stats = core.finalize()
        assert stats.instructions == 500


class TestIPC:
    def test_ipc_computation(self):
        core = make_core([], limit=0)
        stats = core.finalize()
        stats.instructions = 4000
        stats.finish_ps = 1000 * 1000  # 1 us at 4 GHz = 4000 cycles
        assert stats.ipc(4.0) == pytest.approx(1.0)

    def test_zero_time_ipc(self):
        core = make_core([], limit=0)
        stats = core.finalize()
        assert stats.ipc(4.0) == 0.0


class TestBudget:
    def test_trace_cut_at_instruction_limit(self):
        items = [TraceItem(99, i * 64) for i in range(100)]
        core = make_core(items, limit=250)  # room for 2 accesses only
        issued = 0
        while True:
            action, value = core.next_action()
            if action != "issue":
                break
            core.take_request(float(value))
            issued += 1
        assert issued == 2
