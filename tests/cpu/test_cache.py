"""Set-associative LLC substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import SetAssociativeCache


def make_cache(capacity=16 * 64, ways=4, line=64):
    return SetAssociativeCache(capacity, ways, line)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_aliases(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(63)  # same 64 B line
        assert not cache.access(64)

    def test_stats(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)


class TestLRU:
    def test_eviction_order(self):
        cache = make_cache(capacity=4 * 64, ways=4)  # 1 set, 4 ways
        for i in range(4):
            cache.access(i * 64)
        cache.access(0)  # refresh line 0
        cache.access(4 * 64)  # evicts line 1 (LRU)
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_eviction_counted(self):
        cache = make_cache(capacity=4 * 64, ways=4)
        for i in range(5):
            cache.access(i * 64)
        assert cache.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        cache = make_cache(capacity=4 * 64, ways=4)
        cache.access(0, is_write=True)
        for i in range(1, 5):
            cache.access(i * 64)
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = make_cache(capacity=4 * 64, ways=4)
        cache.access(0)
        cache.access(0, is_write=True)
        for i in range(1, 5):
            cache.access(i * 64)
        assert cache.stats.writebacks == 1


class TestFlush:
    def test_flush_reports_dirty_lines(self):
        cache = make_cache()
        cache.access(0, is_write=True)
        cache.access(64)
        assert cache.flush() == 1
        assert not cache.contains(0)


class TestGeometry:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 4)

    def test_indivisible_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64, 2)

    def test_too_small_for_ways(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(64, 4)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 4095), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(addresses):
    cache = SetAssociativeCache(8 * 64, 2, 64)
    for address in addresses:
        cache.access(address)
    total = sum(len(s) for s in cache._sets)
    assert total <= 8


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1023), min_size=1, max_size=200))
def test_hits_plus_misses_equals_accesses(addresses):
    cache = SetAssociativeCache(8 * 64, 2, 64)
    for address in addresses:
        cache.access(address)
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
