"""End-to-end checks of the paper's headline claims, at test scale.

The benchmarks regenerate full tables; these tests pin the *claims* the
paper's abstract and introduction make, so a regression that silently
flips a conclusion fails the test suite, not just a bench report.
"""

import pytest

from repro.sim.runner import DesignPoint, slowdown

SCALE = dict(instructions=40_000)


def sd(workload, design, trh=500, **kw):
    return slowdown(DesignPoint(workload=workload, design=design, trh=trh,
                                **SCALE, **kw))


class TestIntroductionClaims:
    def test_prac_slowdown_significant(self):
        """'PRAC causes an average slowdown of 10%' — ours lands in the
        same band for latency-bound workloads."""
        assert 0.05 < sd("mcf", "prac") < 0.30

    def test_prac_flat_in_threshold(self):
        """'identical slowdowns' across T_RH (Figure 2)."""
        values = [sd("mcf", "prac", trh) for trh in (4000, 500, 250)]
        assert max(values) - min(values) < 0.02

    def test_stream_workloads_immune(self):
        """'stream workloads ... have negligible slowdown from PRAC'."""
        assert sd("add", "prac") < 0.02

    def test_mopac_c_removes_most_of_the_slowdown(self):
        """Abstract: MoPAC-C ~1.7% vs PRAC's 10% at T_RH 500."""
        assert sd("mcf", "mopac-c") < 0.5 * sd("mcf", "prac")

    def test_mopac_d_removes_almost_all(self):
        """Abstract: MoPAC-D ~0.7% at T_RH 500."""
        assert sd("mcf", "mopac-d") < 0.03

    def test_mopac_overhead_grows_as_threshold_falls(self):
        """Figure 1(d): 0.2% at 4K -> 2.5% at 250 (direction)."""
        assert sd("hammer", "mopac-c", 4000) <= \
            sd("hammer", "mopac-c", 250) + 0.01


class TestSection6Claims:
    def test_mopac_d_cheaper_than_mopac_c_on_alert_light_load(self):
        """Section 6.6: MoPAC-D < MoPAC-C at T_RH >= 500 because drains
        ride on REF instead of inflating precharges."""
        assert sd("mcf", "mopac-d") <= sd("mcf", "mopac-c") + 0.005

    def test_nup_never_worse(self):
        """Section 8.3: NUP reduces MoPAC-D's overhead."""
        assert sd("hammer", "mopac-d-nup", 250) <= \
            sd("hammer", "mopac-d", 250) + 0.015


class TestConclusionNumbers:
    @pytest.mark.parametrize("design,bound", [
        ("mopac-c", 0.10), ("mopac-d", 0.05)])
    def test_default_threshold_bounds(self, design, bound):
        """Conclusion: 'At T_RH of 500, MoPAC-C and MoPAC-D reduce the
        slowdown of PRAC from 10% to 1.7% and 0.7%'."""
        assert sd("mcf", design, 500) < bound
