"""ASCII plotting."""

import pytest

from repro.analysis.experiments import SlowdownTable
from repro.analysis.plots import (bar_chart, figure_from_table,
                                  per_workload_figure)


@pytest.fixture
def table():
    t = SlowdownTable(label="demo")
    t.add("mcf", "prac", 0.14)
    t.add("mcf", "mopac", 0.02)
    t.add("add", "prac", 0.01)
    t.add("add", "mopac", 0.0)
    return t


class TestBarChart:
    def test_peak_gets_full_bar(self):
        text = bar_chart({"a": 0.5, "b": 0.25}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_included(self):
        assert bar_chart({"a": 1.0}, title="Figure 9").startswith(
            "Figure 9")

    def test_values_rendered(self):
        assert "50.0%" in bar_chart({"a": 0.5})

    def test_empty_values(self):
        assert bar_chart({}, title="t") == "t\n"

    def test_zero_values_no_crash(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "|| 0.0%" in text.replace("| |", "||") or "0.0%" in text

    def test_custom_format(self):
        assert "3.0x" in bar_chart({"a": 3.0}, fmt="{:.1f}x")


class TestTableFigures:
    def test_column_average_figure(self, table):
        text = figure_from_table(table, "averages")
        assert "prac" in text and "mopac" in text
        assert "7.5%" in text  # (14 + 1) / 2

    def test_per_workload_figure(self, table):
        text = per_workload_figure(table, "prac")
        assert "mcf" in text and "add" in text
        # mcf's bar dwarfs add's
        mcf_line = next(l for l in text.splitlines() if "mcf" in l)
        add_line = next(l for l in text.splitlines() if "add" in l)
        assert mcf_line.count("#") > add_line.count("#")
