"""Experiment drivers: analytical exactness and simulation smoke runs."""

import pytest

from repro.analysis import experiments as ex

#: minimal profile so the simulation-backed drivers finish in seconds
TINY = dict(workloads=("xalancbmk",), instructions=8_000)


class TestAnalyticalDrivers:
    def test_fig4(self):
        data = ex.fig4_latency()
        assert data["baseline_ns"] == 40
        assert data["prac_ns"] == 64

    def test_tab2(self):
        assert ex.tab2_moat_ath() == {1000: 975, 500: 472, 250: 219}

    def test_tab5(self):
        budgets = ex.tab5_budgets()
        assert budgets[1].epsilon == pytest.approx(8.48e-9, rel=0.01)

    def test_tab7(self):
        assert [p.ath_star for p in ex.tab7_mopac_c()] == [80, 176, 368]

    def test_tab8(self):
        assert [p.ath_star for p in ex.tab8_mopac_d()] == [60, 152, 336]

    def test_tab9(self):
        reports = ex.tab9_attacks_c()
        assert reports[1].slowdown == pytest.approx(0.067, abs=0.01)

    def test_tab10(self):
        table = ex.tab10_attacks_d()
        assert table[500]["srq_full"].slowdown == pytest.approx(
            0.149, abs=0.005)

    def test_tab11(self):
        assert [p.nup_ath_star for p in ex.tab11_nup()] == [288, 136, 56]

    def test_tab13(self):
        rows = ex.tab13_tolerated()
        assert [r.mopac_d for r in rows] == [250, 500, 1000]

    def test_tab14(self):
        table = ex.tab14_rowpress()
        assert table[500] == {"mopac_c": 80, "mopac_d": 64}

    def test_fig14_alpha(self):
        assert 0.4 < ex.fig14_alpha(trials=3000) < 0.8


class TestSlowdownTable:
    def test_add_and_average(self):
        table = ex.SlowdownTable(label="t")
        table.add("a", "col", 0.1)
        table.add("b", "col", 0.3)
        assert table.column_average("col") == pytest.approx(0.2)
        assert table.averages() == {"col": pytest.approx(0.2)}

    def test_columns_ordered(self):
        table = ex.SlowdownTable(label="t")
        table.add("a", "x", 0.1)
        table.add("a", "y", 0.2)
        assert table.columns == ["x", "y"]


class TestSimulationDriversSmoke:
    def test_fig2(self):
        table = ex.fig2_prac_slowdown(trhs=(500,), **TINY)
        assert "prac@500" in table.columns
        assert "xalancbmk" in table.rows

    def test_fig9(self):
        table = ex.fig9_mopac_c(trhs=(500,), **TINY)
        assert table.column_average("mopac-c@500") <= \
            table.column_average("prac") + 0.02

    def test_fig11(self):
        table = ex.fig11_mopac_d(trhs=(500,), **TINY)
        assert "mopac-d@500" in table.columns

    def test_fig12(self):
        table = ex.fig12_drain_sweep(trhs=(500,), drains=(0, 4), **TINY)
        assert set(table.columns) == {"trh500/drain0", "trh500/drain4"}

    def test_fig13(self):
        table = ex.fig13_srq_sweep(trhs=(500,), sizes=(8, 32), **TINY)
        assert len(table.columns) == 2

    def test_fig17(self):
        table = ex.fig17_nup(trhs=(500,), **TINY)
        assert {"uniform@500", "nup@500"} <= set(table.columns)

    def test_tab12(self):
        # xalancbmk's ACT rate is too low to fill MINT windows in a tiny
        # run; mcf exercises the samplers properly.
        out = ex.tab12_srq_insertions(trhs=(500,), workloads=("mcf",),
                                      instructions=30_000)
        # paper: 12.5 / 100 ACTs uniform, ~half that with NUP
        assert out[500]["uniform"] == pytest.approx(12.5, rel=0.2)
        assert out[500]["nup"] == pytest.approx(
            out[500]["uniform"] / 2, rel=0.25)

    def test_tab4(self):
        out = ex.tab4_characteristics(**TINY)
        assert out["xalancbmk"]["mpki"] == pytest.approx(2.0, rel=0.15)

    def test_fig19(self):
        table = ex.fig19_chips(trhs=(500,), chip_counts=(1, 4), **TINY)
        assert len(table.columns) == 2

    def test_tab15(self):
        out = ex.tab15_closure(policies=("open", "close"), trhs=(500,),
                               **TINY)
        assert set(out) == {"open", "close"}

    def test_stream_subset_empty_without_streams(self):
        table = ex.fig2_prac_slowdown(trhs=(500,), **TINY)
        assert ex.stream_subset(table) == {}


class TestEnvKnobs:
    def test_default_workloads(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert ex.selected_workloads() == ex.FAST_WORKLOADS

    def test_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert len(ex.selected_workloads()) == 23

    def test_instruction_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
        assert ex.instruction_budget() == 1234
