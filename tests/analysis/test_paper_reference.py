"""Cross-consistency: the rendering layer's PAPER reference dict must
agree with what the security modules actually derive.

If someone retunes a model, either the derivation still matches the
published value (fine) or this test forces them to update the reference
dict and EXPERIMENTS.md consciously.
"""

import pytest

from repro.analysis.tables import PAPER
from repro.security.attacks_model import attack_ath_star, mopac_d_attacks
from repro.security.csearch import mopac_c_params, mopac_d_params
from repro.security.markov import mopac_d_nup_params
from repro.security.moat_model import moat_ath
from repro.security.rowpress import (mopac_c_rowpress_params,
                                     mopac_d_rowpress_params)


class TestDerivedValuesMatchReference:
    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_tab2(self, trh):
        assert moat_ath(trh) == PAPER["tab2_ath"][trh]

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_tab7(self, trh):
        params = mopac_c_params(trh)
        assert params.ath_star == PAPER["tab7_ath_star"][trh]
        assert params.critical_updates == PAPER["tab7_c"][trh]

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_tab8(self, trh):
        params = mopac_d_params(trh)
        assert params.ath_star == PAPER["tab8_ath_star"][trh]
        assert params.critical_updates == PAPER["tab8_c"][trh]

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_tab11(self, trh):
        assert mopac_d_nup_params(trh).nup_ath_star == \
            PAPER["tab11_nup"][trh]

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_tab10_within_half_point(self, trh):
        reports = mopac_d_attacks(trh)
        for pattern, published in PAPER["tab10"][trh].items():
            assert reports[pattern].slowdown == pytest.approx(
                published, abs=0.005)

    @pytest.mark.parametrize("trh,key", [(500, 500), (1000, 1000)])
    def test_tab14(self, trh, key):
        assert mopac_c_rowpress_params(trh).ath_star == \
            PAPER["tab14"][key]["mopac_c"]
        assert mopac_d_rowpress_params(trh).ath_star == \
            PAPER["tab14"][key]["mopac_d"]

    @pytest.mark.parametrize("trh", [250, 500, 1000])
    def test_attack_threshold_is_one_quantum_up(self, trh):
        c_params = mopac_c_params(trh)
        assert attack_ath_star(c_params) == \
            c_params.ath_star + c_params.inv_p
