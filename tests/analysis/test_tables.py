"""Table rendering."""

import pytest

from repro.analysis import experiments as ex
from repro.analysis import tables


class TestAnalyticalRendering:
    def test_tab2_contains_anchor_values(self):
        text = tables.render_tab2(ex.tab2_moat_ath())
        assert "975" in text and "472" in text and "219" in text

    def test_tab5_scientific_notation(self):
        text = tables.render_tab5(ex.tab5_budgets())
        assert "e-17" in text

    def test_tab6_grid(self):
        text = tables.render_tab6(ex.tab6_pe1_grid())
        assert "T=500" in text

    def test_tab7_params(self):
        text = tables.render_params_table(
            ex.tab7_mopac_c(), "Table 7", "tab7_ath_star")
        assert "176" in text and "1/8" in text

    def test_tab8_params(self):
        text = tables.render_params_table(
            ex.tab8_mopac_d(), "Table 8", "tab8_ath_star")
        assert "152" in text

    def test_tab9(self):
        text = tables.render_tab9(ex.tab9_attacks_c())
        assert "%" in text

    def test_tab10(self):
        text = tables.render_tab10(ex.tab10_attacks_d())
        assert "srq_full" in text

    def test_tab11(self):
        text = tables.render_tab11(ex.tab11_nup())
        assert "136" in text

    def test_tab13(self):
        text = tables.render_tab13(ex.tab13_tolerated())
        assert "1491" in text  # the paper column is shown alongside

    def test_tab14(self):
        text = tables.render_tab14(ex.tab14_rowpress())
        assert "64" in text


class TestSlowdownRendering:
    def test_table_with_footer(self):
        table = ex.SlowdownTable(label="demo")
        table.add("mcf", "prac", 0.15)
        table.add("add", "prac", 0.01)
        text = tables.render_slowdown_table(table, "My Title")
        assert "My Title" in text
        assert "mcf" in text
        assert "AVERAGE" in text
        assert "8.0%" in text  # (15 + 1) / 2

    def test_missing_cell_rendered_as_nan(self):
        table = ex.SlowdownTable(label="demo")
        table.add("mcf", "a", 0.1)
        table.add("add", "b", 0.2)
        text = tables.render_slowdown_table(table)
        assert "nan" in text


class TestPaperReference:
    def test_reference_dict_complete(self):
        for key in ("tab2_ath", "tab7_ath_star", "tab8_ath_star",
                    "tab11_nup", "tab13", "fig2_avg", "alpha"):
            assert key in tables.PAPER

    def test_tab12_rendering(self):
        data = {500: {"uniform": 12.0, "nup": 6.1}}
        text = tables.render_tab12(data)
        assert "12.0" in text and "6.1" in text

    def test_tab4_rendering(self):
        data = {"mcf": dict(mpki=28.8, rbhr=0.47, apri=16.9, act64=3.1,
                            act200=0.0)}
        text = tables.render_tab4(data)
        assert "28.8" in text

    def test_tab15_rendering(self):
        data = {"open": {"prac": 0.10, "mopac-d@500": 0.008}}
        text = tables.render_tab15(data)
        assert "open" in text and "10.0%" in text
