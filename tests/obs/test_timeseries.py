"""Fixed-interval ring-buffer series and the sampling board."""

import pytest

from repro.obs.timeseries import Series, SeriesBoard


class TestSeries:
    def test_append_and_values(self):
        series = Series("q", capacity=4)
        for value in (1, 2, 3):
            series.append(value)
        assert series.values() == [1.0, 2.0, 3.0]
        assert series.latest() == 3.0
        assert len(series) == 3

    def test_ring_evicts_oldest(self):
        series = Series("q", capacity=3)
        for value in range(6):
            series.append(value)
        assert series.values() == [3.0, 4.0, 5.0]
        assert series.samples == 6  # total ever, not buffered

    def test_empty_latest_is_none(self):
        assert Series("q", capacity=2).latest() is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Series("q", capacity=0)


class TestSeriesBoard:
    def test_sample_reads_every_registered_fn(self):
        state = {"depth": 0}
        board = SeriesBoard(interval_s=0.5, capacity=8)
        board.register("queue", lambda: state["depth"])
        board.register("twice", lambda: state["depth"] * 2)
        state["depth"] = 3
        board.sample()
        state["depth"] = 5
        board.sample()
        assert board.series("queue").values() == [3.0, 5.0]
        assert board.series("twice").values() == [6.0, 10.0]

    def test_duplicate_name_rejected(self):
        board = SeriesBoard()
        board.register("x", lambda: 0)
        with pytest.raises(ValueError):
            board.register("x", lambda: 1)

    def test_as_dict_shape(self):
        board = SeriesBoard(interval_s=2.0, capacity=4)
        board.register("b", lambda: 1)
        board.register("a", lambda: 2)
        board.sample()
        doc = board.as_dict()
        assert doc["interval_s"] == 2.0
        assert doc["capacity"] == 4
        assert list(doc["series"]) == ["a", "b"]  # sorted
        assert doc["series"]["a"] == {"samples": 1, "values": [2.0]}
