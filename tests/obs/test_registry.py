"""Stats registry: metrics, providers, flattening, determinism."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, StatsRegistry


class TestMetrics:
    def test_counter(self):
        registry = StatsRegistry()
        counter = registry.counter("exec.points")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot() == {"exec.points": 5}

    def test_counter_is_shared_by_name(self):
        registry = StatsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.snapshot()["a"] == 2

    def test_gauge(self):
        registry = StatsRegistry()
        registry.gauge("queue.depth").set(7)
        registry.gauge("queue.depth").set(3)
        assert registry.snapshot()["queue.depth"] == 3

    def test_name_type_conflict_rejected(self):
        registry = StatsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")


class TestHistogram:
    def test_percentiles_land_on_bucket_edges(self):
        hist = Histogram([10, 20, 30, 40])
        for value in (1, 11, 12, 21, 35, 35):
            hist.observe(value)
        assert hist.count == 6
        assert hist.percentile(0.5) == 20
        assert hist.percentile(0.99) == 40

    def test_overflow_clamps_to_top_bound(self):
        hist = Histogram([10, 20])
        hist.observe(10_000)
        assert hist.percentile(0.5) == 20
        assert hist.counts[-1] == 1

    def test_mean_exact(self):
        hist = Histogram([100])
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0

    def test_empty(self):
        hist = Histogram([10])
        assert hist.percentile(0.5) == 0
        assert hist.mean == 0.0

    def test_empty_histogram_returns_zero_for_all_valid_p(self):
        hist = Histogram([10, 20])
        for p in (0.0, 0.25, 0.5, 1.0):
            assert hist.percentile(p) == 0

    def test_p_zero_returns_first_nonempty_bucket_edge(self):
        hist = Histogram([10, 20, 30])
        hist.observe(15)  # lands in the (10, 20] bucket
        assert hist.percentile(0.0) == 20

    def test_p_one_returns_last_nonempty_bucket_edge(self):
        hist = Histogram([10, 20, 30])
        hist.observe(5)
        hist.observe(25)
        assert hist.percentile(1.0) == 30

    def test_p_one_clamps_overflow_to_top_bound(self):
        hist = Histogram([10, 20])
        hist.observe(9_999)  # overflow bucket
        assert hist.percentile(1.0) == 20

    def test_out_of_range_p_raises(self):
        hist = Histogram([10])
        hist.observe(1)
        for p in (-0.01, 1.01, 2, -1):
            with pytest.raises(ValueError, match="percentile"):
                hist.percentile(p)

    def test_boundary_p_values_accepted(self):
        hist = Histogram([10])
        hist.observe(1)
        assert hist.percentile(0.0) == 10
        assert hist.percentile(1.0) == 10

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([20, 10])

    def test_as_dict_keys(self):
        hist = Histogram([10])
        assert set(hist.as_dict()) == {"count", "mean", "p50", "p90",
                                       "p99"}


class TestProviders:
    def test_nested_dict_flattens_with_dots(self):
        registry = StatsRegistry()
        registry.register("mc.0", lambda: {"row_hits": 3,
                                           "bank": {"0": {"acts": 1}}})
        assert registry.snapshot() == {"mc.0.row_hits": 3,
                                       "mc.0.bank.0.acts": 1}

    def test_provider_reads_live_state(self):
        state = {"n": 0}
        registry = StatsRegistry()
        registry.register("live", lambda: dict(state))
        state["n"] = 9
        assert registry.snapshot()["live.n"] == 9

    def test_snapshot_keys_sorted(self):
        registry = StatsRegistry()
        registry.register("z", lambda: {"v": 1})
        registry.register("a", lambda: {"v": 2})
        registry.counter("m.count")
        assert list(registry.snapshot()) == ["a.v", "m.count", "z.v"]

    def test_non_numeric_value_rejected(self):
        registry = StatsRegistry()
        registry.register("bad", lambda: {"name": "prac"})
        with pytest.raises(TypeError, match="bad.name"):
            registry.snapshot()

    def test_histogram_value_flattens(self):
        registry = StatsRegistry()
        hist = Histogram([10])
        hist.observe(5)
        registry.register("lat", lambda: {"ps": hist})
        snap = registry.snapshot()
        assert snap["lat.ps.count"] == 1
        assert snap["lat.ps.p50"] == 10
