"""Span tracer: context propagation, determinism, export, zero cost."""

import asyncio
import io
import json
import itertools

from repro.obs.spans import (SpanTracer, current_span, current_tracer,
                             install, span, uninstall)
from repro.obs.tracer import EventTracer


class FakeClock:
    """Deterministic nanosecond clock advancing by a fixed step."""

    def __init__(self, step_ns=1_000):
        self._ticks = itertools.count(0, step_ns)

    def __call__(self):
        return next(self._ticks)


def make_tracer(**kwargs):
    return SpanTracer(clock=FakeClock(), **kwargs)


class TestSpanRecording:
    def test_begin_end_duration(self):
        tracer = make_tracer()
        record = tracer.begin("work")
        assert record.duration_ns == 0  # still open
        tracer.end(record)
        assert record.duration_ns == 1_000

    def test_ids_are_sequential_from_one(self):
        tracer = make_tracer()
        ids = [tracer.begin(f"s{i}").span_id for i in range(3)]
        assert ids == [1, 2, 3]

    def test_ring_bounds_and_counts_drops(self):
        tracer = make_tracer(capacity=2)
        for i in range(5):
            tracer.end(tracer.begin(f"s{i}"))
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [s.name for s in tracer.spans()] == ["s3", "s4"]

    def test_retroactive_record(self):
        tracer = make_tracer()
        record = tracer.record("queue", 100, 400, job_id="job-1")
        assert record.duration_ns == 300
        assert tracer.find(job_id="job-1") == [record]

    def test_tree_reconstruction(self):
        tracer = make_tracer()
        root = tracer.begin("job")
        child = tracer.begin("execute", parent_id=root.span_id)
        tracer.begin("lookup", parent_id=child.span_id)
        tree = tracer.tree(root)
        assert tree["name"] == "job"
        assert tree["children"][0]["name"] == "execute"
        assert tree["children"][0]["children"][0]["name"] == "lookup"


class TestContextPropagation:
    def test_no_tracer_installed_is_noop(self):
        assert current_tracer() is None
        with span("anything", attr=1) as record:
            assert record is None
        assert current_span() is None

    def test_nesting_builds_parent_links(self):
        tracer = make_tracer()
        token = install(tracer)
        try:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert current_span() is inner
                assert current_span() is outer
        finally:
            uninstall(token)
        assert [s.name for s in tracer.spans()] == ["outer", "inner"]

    def test_explicit_parent_override(self):
        tracer = make_tracer()
        token = install(tracer)
        try:
            root = tracer.begin("root")
            with span("child", parent=root) as child:
                assert child.parent_id == root.span_id
            with span("orphan", parent=None) as orphan:
                assert orphan.parent_id is None
        finally:
            uninstall(token)

    def test_asyncio_tasks_inherit_active_span(self):
        tracer = make_tracer()

        async def leaf(name):
            with span(name):
                await asyncio.sleep(0)

        async def main():
            token = install(tracer)
            try:
                with span("job") as root:
                    await asyncio.gather(leaf("a"), leaf("b"))
                return root
            finally:
                uninstall(token)

        root = asyncio.run(main())
        parents = {s.name: s.parent_id for s in tracer.spans()}
        assert parents["a"] == root.span_id
        assert parents["b"] == root.span_id

    def test_structure_is_deterministic_across_runs(self):
        def run():
            tracer = make_tracer()
            token = install(tracer)
            try:
                with span("job"):
                    with span("step", key="k"):
                        pass
                    with span("step", key="k2"):
                        pass
            finally:
                uninstall(token)
            return [(s.span_id, s.parent_id, s.name)
                    for s in tracer.spans()]

        assert run() == run()


class TestExport:
    def test_jsonl_round_trip(self):
        tracer = make_tracer()
        tracer.end(tracer.begin("a", job_id="j"))
        buffer = io.StringIO()
        assert tracer.to_jsonl(buffer) == 1
        doc = json.loads(buffer.getvalue())
        assert doc["name"] == "a"
        assert doc["attrs"] == {"job_id": "j"}

    def test_chrome_trace_tids_group_by_root(self):
        tracer = make_tracer()
        root = tracer.begin("job")
        child = tracer.begin("execute", parent_id=root.span_id)
        tracer.end(child)
        tracer.end(root)
        other = tracer.begin("job")
        tracer.end(other)
        buffer = io.StringIO()
        tracer.to_chrome_trace(buffer)
        doc = json.loads(buffer.getvalue())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {e["args"]["span_id"]: e["tid"] for e in events}
        assert tids[root.span_id] == tids[child.span_id]
        assert tids[other.span_id] != tids[root.span_id]

    def test_chrome_trace_merges_dram_events(self):
        spans_tracer = make_tracer()
        spans_tracer.end(spans_tracer.begin("job"))
        dram = EventTracer()
        dram.record(1_000, "ACT", 0, 3, 42)
        buffer = io.StringIO()
        spans_tracer.to_chrome_trace(buffer, dram_tracer=dram)
        doc = json.loads(buffer.getvalue())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["pid"] == 1000
        assert instants[0]["tid"] == 3

    def test_open_span_exports_with_partial_duration(self):
        tracer = make_tracer()
        tracer.begin("open")
        buffer = io.StringIO()
        tracer.to_chrome_trace(buffer)
        doc = json.loads(buffer.getvalue())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events[0]["dur"] >= 0
