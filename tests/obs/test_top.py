"""The obs.top renderer is a pure function over /metrics documents."""

from repro.obs.top import eta_s, render, sparkline


def doc(stats=None, series=None):
    wrapped = {name: {"samples": len(values), "values": values}
               for name, values in (series or {}).items()}
    return {"stats": stats or {},
            "series": {"interval_s": 1.0, "capacity": 600,
                       "series": wrapped}}


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_blocks(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_scales_to_extremes(self):
        strip = sparkline([0, 10])
        assert strip[0] == "▁"
        assert strip[-1] == "█"

    def test_window_clips_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestEta:
    def test_drained_queue_is_zero(self):
        assert eta_s(doc(stats={"serve.queue_depth": 0,
                                "serve.jobs_running": 0})) == 0.0

    def test_no_rate_history_is_unknown(self):
        assert eta_s(doc(stats={"serve.queue_depth": 4})) is None

    def test_extrapolates_from_recent_rate(self):
        document = doc(stats={"serve.queue_depth": 6,
                              "serve.jobs_running": 2},
                       series={"serve.jobs_per_s": [0.0, 2.0, 2.0]})
        assert eta_s(document) == 4.0


class TestRender:
    def test_renders_all_sections(self):
        document = doc(
            stats={"serve.queue_depth": 2, "serve.jobs_running": 1,
                   "serve.jobs_completed": 7, "serve.jobs_failed": 0,
                   "serve.jobs_known": 10,
                   "serve.pool.inflight_points": 3,
                   "serve.pool.workers": 4, "serve.dedup_hits": 5,
                   "serve.job_latency_ms.p50": 100,
                   "serve.job_latency_ms.p99": 500},
            series={"serve.pool.cache_hit_rate": [0.5],
                    "serve.jobs_per_s": [1.0],
                    "serve.pool.points_per_s": [8.0],
                    "serve.queue_depth": [3, 2, 2]})
        frame = render(document, address="unix:/tmp/s.sock")
        assert "unix:/tmp/s.sock" in frame
        assert "queued 2" in frame
        assert "done 7" in frame
        assert "cache-hit 50%" in frame
        assert "p50 100ms p99 500ms" in frame
        assert "7/10 jobs terminal" in frame
        assert "ETA" in frame

    def test_empty_document_renders_without_crashing(self):
        frame = render(doc())
        assert "jobs" in frame
        assert "ETA 0s" in frame  # nothing outstanding: drained

    def test_unknown_eta_renders_dashes(self):
        frame = render(doc(stats={"serve.queue_depth": 4}))
        assert "ETA --" in frame
