"""Observability wired through the full stack: snapshots, tracing, phases."""

import pytest

from repro.obs import EventTracer
from repro.sim.runner import DesignPoint, run_point

FAST = dict(trh=500, instructions=6_000, rows_per_bank=512,
            refresh_scale=1 / 256)
#: SRQ-pressure point guaranteeing ALERT/RFM traffic (see obs.selfcheck).
ABO = dict(workload="hammer", design="mopac-d", trh=250,
           instructions=12_000, rows_per_bank=128, refresh_scale=1 / 256,
           p=1.0, srq_size=5, drain_on_ref=0)


@pytest.fixture(scope="module")
def result():
    return run_point(DesignPoint(workload="mcf", design="prac", **FAST))


@pytest.fixture(scope="module")
def traced():
    tracer = EventTracer()
    result = run_point(DesignPoint(**ABO), tracer=tracer)
    return tracer, result


class TestSnapshot:
    def test_dotted_namespace_present(self, result):
        snap = result.stats
        assert "mc.0.row_hits" in snap
        assert "mc.0.bank.0.activations" in snap
        assert "mitigation.0.alerts" in snap
        assert "mitigation.rfm_events" in snap
        assert "core.0.ipc" in snap
        assert "sim.elapsed_ps" in snap

    def test_snapshot_matches_dataclass_stats(self, result):
        assert result.stats["mc.0.row_hits"] == result.mc_stats[0].row_hits
        assert result.stats["sim.elapsed_ps"] == result.elapsed_ps
        assert result.stats["core.0.ipc"] == result.ipcs[0]

    def test_latency_histogram_in_snapshot(self, result):
        snap = result.stats
        total = sum(s.serviced for s in result.mc_stats)
        count = sum(snap[f"mc.{i}.latency_ps.count"]
                    for i in range(len(result.mc_stats)))
        assert count == total
        assert snap["mc.0.latency_ps.p50"] > 0

    def test_keys_sorted(self, result):
        keys = list(result.stats)
        assert keys == sorted(keys)

    def test_snapshot_deterministic(self, result):
        again = run_point(DesignPoint(workload="mcf", design="prac",
                                      **FAST))
        assert again.stats == result.stats


class TestTracing:
    def test_alert_and_rfm_events_match_stats(self, traced):
        tracer, result = traced
        counts = tracer.counts()
        assert counts["ALERT"] == sum(s.alerts for s in result.mc_stats) > 0
        assert counts["RFM"] == sum(s.rfm_commands
                                    for s in result.mc_stats)
        assert counts["ACT"] == result.total_activations

    def test_drain_events_traced(self, traced):
        tracer, result = traced
        drains = tracer.events("DRAIN")
        assert drains, "SRQ-pressure run must drain"
        assert {event.cause for event in drains} <= {"ref", "rfm"}

    def test_tracing_does_not_perturb(self, traced):
        _, traced_result = traced
        plain = run_point(DesignPoint(**ABO))
        assert plain.ipcs == traced_result.ipcs
        assert plain.stats == traced_result.stats

    def test_events_time_ordered_per_subchannel(self, traced):
        tracer, _ = traced
        last: dict[int, int] = {}
        for event in tracer.events():
            if event.kind == "ACT":
                assert event.time_ps >= last.get(event.subchannel, 0)
                last[event.subchannel] = event.time_ps


class TestPhases:
    def test_phase_breakdown_attached(self, result):
        assert set(result.phases) == {"tracegen", "warmup", "sim"}
        assert all(seconds >= 0 for seconds in result.phases.values())

    def test_sim_dominates(self, result):
        # the event loop is the run; generator setup is bookkeeping
        assert result.phases["sim"] >= result.phases["tracegen"]
