"""Event tracer: ring bounding, queries, JSONL and Chrome export."""

import io
import json

import pytest

from repro.obs.tracer import EventTracer, TraceEvent, merge_events


def fill(tracer: EventTracer, n: int, kind: str = "ACT") -> None:
    for i in range(n):
        tracer.record(i * 1000, kind, subchannel=0, bank=i % 4, row=i)


class TestRing:
    def test_records_in_order(self):
        tracer = EventTracer()
        fill(tracer, 3)
        times = [event.time_ps for event in tracer.events()]
        assert times == [0, 1000, 2000]

    def test_bounded_with_drop_accounting(self):
        tracer = EventTracer(capacity=10)
        fill(tracer, 25)
        assert len(tracer) == 10
        assert tracer.dropped == 15
        # oldest events were evicted; the newest survive
        assert tracer.events()[-1].row == 24

    def test_disabled_records_nothing(self):
        tracer = EventTracer(enabled=False)
        fill(tracer, 5)
        assert len(tracer) == 0

    def test_clear(self):
        tracer = EventTracer(capacity=2)
        fill(tracer, 5)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestQueries:
    def test_kind_filter_and_counts(self):
        tracer = EventTracer()
        fill(tracer, 4, "ACT")
        fill(tracer, 2, "RFM")
        assert tracer.counts() == {"ACT": 4, "RFM": 2}
        assert len(tracer.events("RFM")) == 2

    def test_merge_events_time_orders(self):
        a, b = EventTracer(), EventTracer()
        a.record(300, "ACT")
        b.record(100, "REF")
        b.record(200, "PRE")
        merged = merge_events([a, b])
        assert [event.kind for event in merged] == ["REF", "PRE", "ACT"]


class TestExport:
    def test_jsonl(self):
        tracer = EventTracer()
        tracer.record(1500, "ALERT", 1, 2, 3, "srq_full")
        buffer = io.StringIO()
        assert tracer.to_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record == {"t": 1500, "kind": "ALERT", "sc": 1,
                          "bank": 2, "row": 3, "cause": "srq_full",
                          "cu": False}

    def test_jsonl_counter_update_flag(self):
        tracer = EventTracer()
        tracer.record(2000, "ACT", 0, 1, 9, "miss", cu=True)
        buffer = io.StringIO()
        tracer.to_jsonl(buffer)
        assert json.loads(buffer.getvalue())["cu"] is True

    def test_jsonl_to_path(self, tmp_path):
        tracer = EventTracer()
        fill(tracer, 3)
        path = tmp_path / "events.jsonl"
        assert tracer.to_jsonl(str(path)) == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3

    def test_chrome_trace_document(self, tmp_path):
        tracer = EventTracer()
        tracer.record(2_000_000, "ACT", subchannel=1, bank=7, row=42,
                      cause="miss")
        tracer.record(3_000_000, "RFM", subchannel=0)
        path = tmp_path / "trace.json"
        assert tracer.to_chrome_trace(str(path)) == 2
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert len(events) == 2
        act = events[0]
        assert act["name"] == "ACT" and act["ph"] == "i"
        assert act["ts"] == 2.0  # 2e6 ps == 2 us
        assert act["pid"] == 1 and act["tid"] == 7
        assert act["args"] == {"row": 42, "cause": "miss"}
        assert document["otherData"]["dropped"] == 0

    def test_event_as_dict_defaults(self):
        event = TraceEvent(10, "REF")
        assert event.as_dict()["bank"] == -1
