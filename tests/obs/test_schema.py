"""The metric-namespace schema and its generated docs table."""

import pathlib

from repro.obs import schema

ROOT = pathlib.Path(__file__).parents[2]
DOC = ROOT / "docs" / "observability.md"


# ----------------------------------------------------------------------
# Matching semantics
# ----------------------------------------------------------------------
def test_every_declared_example_matches_the_schema():
    for namespace in schema.NAMESPACES:
        for example in _example_names(namespace):
            assert schema.matches(example), (
                f"{namespace.prefix}: declared example {example!r} does "
                f"not match any namespace")


def test_placeholders_match_single_segments():
    assert schema.match("mc.0.row_hits").prefix == "mc.{sc}"
    assert schema.match("mc.3.bank.7.activations").prefix == "mc.{sc}.bank.{b}"


def test_longest_template_wins():
    assert schema.match("mc.0.latency_ps.p99").prefix == "mc.{sc}.latency_ps"
    assert schema.match("mitigation.0.security.drift_max").prefix \
        == "mitigation.{sc}.security"


def test_shape_wildcards_match_like_concrete_segments():
    # the stats-namespace lint rule checks f-string shapes this way
    assert schema.match("mc.{}").prefix == "mc.{sc}"
    assert schema.matches("mitigation.{}.security.rfm_cadence.p99")


def test_unknown_names_do_not_match():
    assert schema.match("bogus.counter") is None
    assert not schema.matches("mcx.0.row_hits")
    assert not schema.matches("mc")  # shorter than every template


# ----------------------------------------------------------------------
# Docs generation (single source of truth)
# ----------------------------------------------------------------------
def test_docs_table_matches_the_schema():
    section = schema.doc_section_of(DOC.read_text(encoding="utf-8"))
    assert section is not None, (
        f"{DOC} lost its namespace-table markers")
    assert section == schema.render_doc_section(), (
        f"{DOC} namespace table drifted from repro.obs.schema — run "
        f"python -m repro.obs.schema --write")


def test_check_cli_agrees(capsys):
    assert schema.main(["--check", "--doc", str(DOC)]) == 0
    capsys.readouterr()


def test_write_cli_round_trips(tmp_path, capsys):
    doc = tmp_path / "observability.md"
    stale = (f"intro\n\n{schema.BEGIN_MARK}\n| stale |\n"
             f"{schema.END_MARK}\n\ntrailer\n")
    doc.write_text(stale)
    assert schema.main(["--check", "--doc", str(doc)]) == 1
    assert schema.main(["--write", "--doc", str(doc)]) == 0
    assert schema.main(["--check", "--doc", str(doc)]) == 0
    text = doc.read_text()
    assert text.startswith("intro\n") and text.endswith("trailer\n")
    capsys.readouterr()


def test_every_namespace_renders_one_table_row():
    table = schema.render_table()
    for namespace in schema.NAMESPACES:
        assert f"`{namespace.prefix}.*`" in table


def _example_names(namespace):
    """Concrete metric names out of the markdown examples column."""
    names = []
    for chunk in namespace.examples.split("`"):
        if "." not in chunk or " " in chunk.strip():
            continue
        name = chunk.strip()
        # `a.b.count/mean/p99` families: the first spelling is concrete
        name = name.split("/")[0]
        # trailing wildcard families document a prefix
        name = name.removesuffix(".*")
        if name:
            names.append(name)
    return names
