"""Phase profiler: accumulation, nesting, snapshots, summaries."""

import time

from repro.obs.profiler import PhaseProfiler


class TestPhases:
    def test_phase_records_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("sim"):
            pass
        assert profiler.seconds("sim") >= 0.0
        assert profiler.entries("sim") == 1

    def test_reentry_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("cache_io"):
                pass
        assert profiler.entries("cache_io") == 3

    def test_records_even_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert profiler.entries("boom") == 1

    def test_add_external_duration(self):
        profiler = PhaseProfiler()
        profiler.add("simulate", 1.5)
        profiler.add("simulate", 0.5)
        assert profiler.seconds("simulate") == 2.0

    def test_snapshot_preserves_first_entered_order(self):
        profiler = PhaseProfiler()
        profiler.add("tracegen", 0.1)
        profiler.add("sim", 0.2)
        profiler.add("tracegen", 0.1)
        assert list(profiler.snapshot()) == ["tracegen", "sim"]

    def test_total_and_summary(self):
        profiler = PhaseProfiler()
        profiler.add("a", 1.0)
        profiler.add("b", 2.0)
        assert profiler.total == 3.0
        summary = profiler.summary()
        assert "a 1.00s" in summary and "total 3.00s" in summary

    def test_empty_summary(self):
        assert PhaseProfiler().summary() == "no phases recorded"

    def test_unknown_phase_reads_zero(self):
        profiler = PhaseProfiler()
        assert profiler.seconds("nope") == 0.0
        assert profiler.entries("nope") == 0


class TestNesting:
    """Nested phases must not double-count wall time in ``total``."""

    def test_nested_block_counts_once_in_total(self):
        profiler = PhaseProfiler()
        with profiler.phase("simulate"):
            with profiler.phase("cache_io"):
                time.sleep(0.01)
        # inclusive: simulate contains cache_io
        assert (profiler.seconds("simulate")
                >= profiler.seconds("cache_io") >= 0.01)
        # exclusive: the nested seconds belong to cache_io alone
        assert (abs(profiler.exclusive_seconds("simulate")
                    - (profiler.seconds("simulate")
                       - profiler.seconds("cache_io"))) < 1e-9)
        # total covers the wall once — the old inclusive sum reported
        # simulate + cache_io here, double-counting the sleep
        assert abs(profiler.total - profiler.seconds("simulate")) < 1e-9

    def test_doubly_nested_attribution(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("middle"):
                with profiler.phase("inner"):
                    time.sleep(0.005)
        assert (abs(profiler.exclusive_seconds("middle")
                    - (profiler.seconds("middle")
                       - profiler.seconds("inner"))) < 1e-9)
        assert abs(profiler.total - profiler.seconds("outer")) < 1e-9

    def test_sequential_phases_sum_as_before(self):
        profiler = PhaseProfiler()
        profiler.add("a", 1.0)
        profiler.add("b", 2.0)
        assert profiler.total == 3.0
        assert profiler.exclusive_snapshot() == {"a": 1.0, "b": 2.0}

    def test_external_add_is_not_charged_to_enclosing_phase(self):
        profiler = PhaseProfiler()
        with profiler.phase("sweep"):
            profiler.add("worker_wall", 2.0)  # measured elsewhere
        # sweep's own exclusive time stays non-negative (the 2 external
        # seconds never elapsed on this profiler's clock)
        assert profiler.exclusive_seconds("sweep") >= 0.0
        assert profiler.exclusive_seconds("worker_wall") == 2.0
        assert profiler.total >= 2.0
