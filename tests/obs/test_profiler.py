"""Phase profiler: accumulation, nesting, snapshots, summaries."""

from repro.obs.profiler import PhaseProfiler


class TestPhases:
    def test_phase_records_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("sim"):
            pass
        assert profiler.seconds("sim") >= 0.0
        assert profiler.entries("sim") == 1

    def test_reentry_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("cache_io"):
                pass
        assert profiler.entries("cache_io") == 3

    def test_records_even_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert profiler.entries("boom") == 1

    def test_add_external_duration(self):
        profiler = PhaseProfiler()
        profiler.add("simulate", 1.5)
        profiler.add("simulate", 0.5)
        assert profiler.seconds("simulate") == 2.0

    def test_snapshot_preserves_first_entered_order(self):
        profiler = PhaseProfiler()
        profiler.add("tracegen", 0.1)
        profiler.add("sim", 0.2)
        profiler.add("tracegen", 0.1)
        assert list(profiler.snapshot()) == ["tracegen", "sim"]

    def test_total_and_summary(self):
        profiler = PhaseProfiler()
        profiler.add("a", 1.0)
        profiler.add("b", 2.0)
        assert profiler.total == 3.0
        summary = profiler.summary()
        assert "a 1.00s" in summary and "total 3.00s" in summary

    def test_empty_summary(self):
        assert PhaseProfiler().summary() == "no phases recorded"

    def test_unknown_phase_reads_zero(self):
        profiler = PhaseProfiler()
        assert profiler.seconds("nope") == 0.0
        assert profiler.entries("nope") == 0
