"""Prometheus text exposition of stats snapshots."""

import math

import pytest

from repro.obs.exposition import (CONTENT_TYPE, metric_name,
                                  parse_prometheus, to_prometheus)


class TestMetricName:
    def test_dots_fold_to_underscores(self):
        assert metric_name("serve.jobs_completed") == \
            "repro_serve_jobs_completed"

    def test_arbitrary_punctuation_folds(self):
        assert metric_name("mc.0.bank-3/acts") == "repro_mc_0_bank_3_acts"

    def test_custom_prefix(self):
        assert metric_name("a.b", prefix="x_") == "x_a_b"


class TestToPrometheus:
    def test_types_and_values(self):
        text = to_prometheus({"serve.queue_depth": 3,
                              "serve.rate": 0.5})
        lines = text.splitlines()
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert "repro_serve_queue_depth 3" in lines
        assert "repro_serve_rate 0.5" in lines
        assert text.endswith("\n")

    def test_keys_sorted(self):
        text = to_prometheus({"z.last": 1, "a.first": 2})
        samples = [line for line in text.splitlines()
                   if not line.startswith("#")]
        assert samples == ["repro_a_first 2", "repro_z_last 1"]

    def test_special_floats(self):
        text = to_prometheus({"x": math.nan, "y": math.inf})
        assert "repro_x NaN" in text
        assert "repro_y +Inf" in text

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestParsePrometheus:
    def test_round_trip(self):
        snapshot = {"serve.queue_depth": 3, "serve.rate": 0.25}
        parsed = parse_prometheus(to_prometheus(snapshot))
        assert parsed == {"repro_serve_queue_depth": 3.0,
                          "repro_serve_rate": 0.25}

    def test_comments_and_blanks_skipped(self):
        parsed = parse_prometheus("# HELP x y\n\nm 1\n")
        assert parsed == {"m": 1.0}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("just-a-name\n")
