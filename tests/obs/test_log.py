"""Structured logging: namespacing, REPRO_LOG, idempotent configure."""

import io
import logging

import pytest

from repro.obs.log import configure, get_logger, resolve_level


@pytest.fixture(autouse=True)
def reset_repro_logging():
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestResolveLevel:
    def test_default_is_info(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level() == logging.INFO

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert resolve_level() == logging.DEBUG

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert resolve_level("error") == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")


class TestGetLogger:
    def test_short_name_is_namespaced(self):
        assert get_logger("campaign").name == "repro.campaign"

    def test_module_name_kept(self):
        assert get_logger("repro.exec.engine").name == "repro.exec.engine"

    def test_root(self):
        assert get_logger().name == "repro"


class TestConfigure:
    def test_messages_reach_the_stream(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        stream = io.StringIO()
        configure(stream=stream)
        get_logger("unit").info("hello %d", 7)
        assert "I repro.unit: hello 7" in stream.getvalue()

    def test_warning_level_silences_info(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        stream = io.StringIO()
        configure("warning", stream=stream)
        get_logger("unit").info("quiet")
        get_logger("unit").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_repeated_configure_does_not_stack_handlers(self):
        configure()
        configure()
        root = logging.getLogger("repro")
        ours = [h for h in root.handlers
                if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1

    def test_reconfigure_changes_level(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        stream = io.StringIO()
        configure("warning", stream=stream)
        configure("debug", stream=stream)
        get_logger("unit").debug("now visible")
        assert "now visible" in stream.getvalue()

    def test_env_level_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        stream = io.StringIO()
        configure(stream=stream)
        get_logger("unit").warning("hidden")
        assert stream.getvalue() == ""
