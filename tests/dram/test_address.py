"""Address mapping: MOP locality, bijectivity, inverse mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMConfig
from repro.dram.address import MOPMapper, OpenPageMapper, make_mapper
from repro.workloads.synthetic import inverse_map_line


@pytest.fixture
def config():
    return DRAMConfig(subchannels=2, banks_per_subchannel=4,
                      rows_per_bank=64)


class TestMOPLocality:
    def test_mop_lines_share_a_row(self, config):
        mapper = MOPMapper(config)
        first = mapper.map_line(0)
        for i in range(1, config.mop_lines):
            nxt = mapper.map_line(i)
            assert nxt.bank_address == first.bank_address
            assert nxt.column == first.column + i

    def test_next_group_changes_bank(self, config):
        mapper = MOPMapper(config)
        a = mapper.map_line(0)
        b = mapper.map_line(config.mop_lines)
        assert b.bank == a.bank + 1
        assert b.row == a.row

    def test_groups_cycle_all_banks_then_subchannels(self, config):
        mapper = MOPMapper(config)
        group = config.mop_lines
        banks_seen = {mapper.map_line(i * group).bank
                      for i in range(config.banks_per_subchannel)}
        assert banks_seen == set(range(config.banks_per_subchannel))
        after_banks = mapper.map_line(config.banks_per_subchannel * group)
        assert after_banks.subchannel == 1

    def test_row_advances_after_all_banks(self, config):
        mapper = MOPMapper(config)
        per_row_sweep = (config.mop_lines * config.banks_per_subchannel
                         * config.subchannels)
        a = mapper.map_line(0)
        b = mapper.map_line(per_row_sweep)
        assert b.row == a.row + 1


class TestOpenPageMapping:
    def test_row_is_contiguous(self, config):
        mapper = OpenPageMapper(config)
        first = mapper.map_line(0)
        last = mapper.map_line(config.lines_per_row - 1)
        assert first.bank_address == last.bank_address
        assert last.column == config.lines_per_row - 1

    def test_next_row_chunk_changes_bank(self, config):
        mapper = OpenPageMapper(config)
        a = mapper.map_line(0)
        b = mapper.map_line(config.lines_per_row)
        assert (b.bank, b.subchannel) != (a.bank, a.subchannel) or \
            b.row != a.row


class TestBijectivity:
    @pytest.mark.parametrize("kind", ["mop", "open"])
    def test_all_lines_distinct(self, config, kind):
        mapper = make_mapper(config, kind)
        seen = set()
        for line in range(mapper.total_lines()):
            loc = mapper.map_line(line)
            key = (loc.subchannel, loc.bank, loc.row, loc.column)
            assert key not in seen
            seen.add(key)
        assert len(seen) == mapper.total_lines()

    def test_wraparound(self, config):
        mapper = MOPMapper(config)
        assert mapper.map_line(mapper.total_lines()) == mapper.map_line(0)

    def test_map_address_uses_line_bytes(self, config):
        mapper = MOPMapper(config)
        assert mapper.map_address(0) == mapper.map_address(
            config.line_bytes - 1)
        assert mapper.map_address(config.line_bytes) == mapper.map_line(1)


class TestInverseMapping:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1), st.integers(0, 3), st.integers(0, 63),
           st.integers(0, 127))
    def test_roundtrip(self, subchannel, bank, row, column):
        config = DRAMConfig(subchannels=2, banks_per_subchannel=4,
                            rows_per_bank=64)
        line = inverse_map_line(config, subchannel, bank, row, column)
        loc = MOPMapper(config).map_line(line)
        assert (loc.subchannel, loc.bank, loc.row, loc.column) == \
            (subchannel, bank, row, column)


class TestFactory:
    def test_known_kinds(self, config):
        assert isinstance(make_mapper(config, "mop"), MOPMapper)
        assert isinstance(make_mapper(config, "open"), OpenPageMapper)

    def test_unknown_kind_rejected(self, config):
        with pytest.raises(ValueError, match="unknown"):
            make_mapper(config, "xor")
