"""DDR5 energy model (extension)."""

import pytest

from repro.dram.energy import EnergyBreakdown, energy_of, energy_overhead
from repro.sim.runner import DesignPoint, simulate

FAST = dict(instructions=20_000, rows_per_bank=512, refresh_scale=1 / 256)


@pytest.fixture(scope="module")
def runs():
    base = simulate(DesignPoint(workload="mcf", design="baseline", **FAST))
    prac = simulate(DesignPoint(workload="mcf", design="prac", trh=500,
                                **FAST))
    mopac_c = simulate(DesignPoint(workload="mcf", design="mopac-c",
                                   trh=500, **FAST))
    return base, prac, mopac_c


class TestBreakdown:
    def test_all_components_non_negative(self, runs):
        for result in runs:
            breakdown = energy_of(result)
            assert all(v >= 0 for v in breakdown.as_dict().values())

    def test_total_is_sum(self, runs):
        breakdown = energy_of(runs[0])
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_baseline_has_no_counter_energy(self, runs):
        assert energy_of(runs[0]).counter_update_mj == 0

    def test_prac_pays_counter_energy_on_every_episode(self, runs):
        base, prac, _ = runs
        breakdown = energy_of(prac)
        assert breakdown.counter_update_mj > 0
        # one update per closed episode (rows still open at run end have
        # not paid their PREcu yet)
        updates = sum(s["counter_updates"] for s in prac.policy_stats)
        assert breakdown.counter_update_mj == pytest.approx(
            updates * 1.1e-6, rel=1e-9)
        assert updates == pytest.approx(prac.total_activations, rel=0.05)

    def test_mopac_c_counter_energy_scaled_by_p(self, runs):
        _, prac, mopac_c = runs
        ratio = (energy_of(mopac_c).counter_update_mj
                 / energy_of(prac).counter_update_mj)
        assert ratio == pytest.approx(1 / 8, rel=0.3)


class TestOverhead:
    def test_baseline_vs_itself_zero(self, runs):
        assert energy_overhead(runs[0], runs[0]) == pytest.approx(0.0)

    def test_prac_energy_overhead_positive(self, runs):
        base, prac, _ = runs
        assert energy_overhead(prac, base) > 0

    def test_mopac_c_cheaper_than_prac(self, runs):
        base, prac, mopac_c = runs
        assert energy_overhead(mopac_c, base) < \
            energy_overhead(prac, base)
