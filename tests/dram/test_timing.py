"""DDR5 timing sets: paper Table 1 values and structural invariants."""

import dataclasses

import pytest

from repro.dram.timing import MoPACTimings, TimingSet, ddr5_base, ddr5_prac
from repro.units import ns, to_ns


class TestTable1Values:
    """The exact numbers of paper Table 1."""

    def test_base_trcd(self, base_timing):
        assert to_ns(base_timing.tRCD) == 14

    def test_base_trp(self, base_timing):
        assert to_ns(base_timing.tRP) == 14

    def test_base_tras(self, base_timing):
        assert to_ns(base_timing.tRAS) == 32

    def test_base_trc(self, base_timing):
        assert to_ns(base_timing.tRC) == 46

    def test_base_trefw_is_32ms(self, base_timing):
        assert to_ns(base_timing.tREFW) == 32_000_000

    def test_base_trefi(self, base_timing):
        assert to_ns(base_timing.tREFI) == 3900

    def test_base_trfc(self, base_timing):
        assert to_ns(base_timing.tRFC) == 410

    def test_prac_trcd(self, prac_timing):
        assert to_ns(prac_timing.tRCD) == 16

    def test_prac_trp_inflated_2_57x(self, prac_timing, base_timing):
        assert to_ns(prac_timing.tRP) == 36
        assert prac_timing.tRP / base_timing.tRP == pytest.approx(36 / 14)

    def test_prac_tras_halved(self, prac_timing):
        assert to_ns(prac_timing.tRAS) == 16

    def test_prac_trc_13pct_higher(self, prac_timing, base_timing):
        assert to_ns(prac_timing.tRC) == 52
        assert prac_timing.tRC / base_timing.tRC == pytest.approx(52 / 46)

    def test_refresh_unchanged_by_prac(self, prac_timing, base_timing):
        assert prac_timing.tREFW == base_timing.tREFW
        assert prac_timing.tREFI == base_timing.tREFI
        assert prac_timing.tRFC == base_timing.tRFC


class TestStructuralInvariants:
    def test_trc_equals_tras_plus_trp(self, base_timing, prac_timing):
        for t in (base_timing, prac_timing):
            assert t.tRC == t.tRAS + t.tRP

    def test_inconsistent_trc_rejected(self, base_timing):
        with pytest.raises(ValueError, match="tRC"):
            dataclasses.replace(base_timing, tRC=base_timing.tRC + 1)

    def test_nonpositive_field_rejected(self, base_timing):
        with pytest.raises(ValueError):
            dataclasses.replace(base_timing, tRCD=0,
                                tRC=base_timing.tRC)

    def test_alert_stall_is_350ns(self, base_timing):
        assert to_ns(base_timing.alert_stall) == 350

    def test_alert_total_is_530ns(self, base_timing):
        # Table 3: tALERT = 180 (normal) + 350 (RFM) = 530 ns.
        assert to_ns(base_timing.alert_total) == 530

    def test_refs_per_refw(self, base_timing):
        assert base_timing.refs_per_refw == 32_000_000 // 3900

    def test_act_spacing_constants(self, base_timing):
        # DDR5-6000: tRRD 2.5 ns, tFAW 13.333 ns
        assert to_ns(base_timing.tRRD) == 2.5
        assert to_ns(base_timing.tFAW) == pytest.approx(13.333, abs=0.001)

    def test_tfaw_binds_beyond_trrd(self, base_timing):
        # four ACTs at tRRD pace finish before tFAW: the window matters
        assert 3 * base_timing.tRRD < base_timing.tFAW


class TestFigure4Latency:
    """Figure 4: row-buffer-conflict service latency."""

    def test_baseline_conflict_read_is_40ns(self, base_timing):
        assert to_ns(base_timing.row_conflict_read_latency()) == 40

    def test_prac_conflict_read(self, prac_timing):
        # Paper quotes 62 ns using the pre-PRAC tRCD of 14 ns; with
        # PRAC's tRCD of 16 ns the analytical number is 64 ns.
        assert to_ns(prac_timing.row_conflict_read_latency()) == 64

    def test_prac_at_least_55pct_worse(self, base_timing, prac_timing):
        ratio = (prac_timing.row_conflict_read_latency()
                 / base_timing.row_conflict_read_latency())
        assert ratio >= 1.55


class TestScaledRefresh:
    def test_scaling_shrinks_trefw_only(self, base_timing):
        scaled = base_timing.scaled_refresh(1 / 64)
        assert scaled.tREFW == base_timing.tREFW // 64
        assert scaled.tREFI == base_timing.tREFI
        assert scaled.tRC == base_timing.tRC

    def test_scale_one_is_identity_values(self, base_timing):
        scaled = base_timing.scaled_refresh(1)
        assert scaled.tREFW == base_timing.tREFW

    def test_scale_never_below_trefi(self, base_timing):
        scaled = base_timing.scaled_refresh(1e-9)
        assert scaled.tREFW >= scaled.tREFI

    @pytest.mark.parametrize("bad", [0, -0.5, 1.5])
    def test_bad_scale_rejected(self, base_timing, bad):
        with pytest.raises(ValueError):
            base_timing.scaled_refresh(bad)


class TestMoPACTimings:
    def test_default_pairing(self):
        pair = MoPACTimings.default()
        assert pair.normal.tRP == ns(14)
        assert pair.counter_update.tRP == ns(36)

    def test_for_update_selects(self):
        pair = MoPACTimings.default()
        assert pair.for_update(True) is pair.counter_update
        assert pair.for_update(False) is pair.normal
