"""Bank state machine: command legality and timing bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank, TimingViolation
from repro.dram.timing import ddr5_base, ddr5_prac


@pytest.fixture
def bank():
    return Bank(0)


class TestActivate:
    def test_activate_opens_row(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        assert bank.is_open
        assert bank.open_row == 7

    def test_activate_returns_column_ready(self, bank, base_timing):
        ready = bank.activate(7, 1000, base_timing)
        assert ready == 1000 + base_timing.tRCD

    def test_double_activate_rejected(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        with pytest.raises(TimingViolation, match="open"):
            bank.activate(8, 10**9, base_timing)

    def test_activate_before_ready_rejected(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        bank.precharge(bank.earliest_precharge())
        with pytest.raises(TimingViolation):
            bank.activate(8, bank.earliest_activate() - 1, base_timing)

    def test_activate_counts(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        assert bank.stats.activations == 1


class TestColumnCommands:
    def test_read_needs_trcd(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        with pytest.raises(TimingViolation):
            bank.read(7, base_timing.tRCD - 1)

    def test_read_at_trcd_ok(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        done = bank.read(7, base_timing.tRCD)
        assert done == base_timing.tRCD + base_timing.tCAS \
            + base_timing.tBURST

    def test_read_wrong_row_rejected(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        with pytest.raises(TimingViolation, match="row"):
            bank.read(8, base_timing.tRCD)

    def test_read_while_idle_rejected(self, bank, base_timing):
        with pytest.raises(TimingViolation):
            bank.read(7, 10**9)

    def test_write_extends_precharge_readiness(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        before = bank.earliest_precharge()
        bank.write(7, base_timing.tRAS)  # write late in the episode
        assert bank.earliest_precharge() > before

    def test_reads_count_as_row_hits(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        bank.read(7, base_timing.tRCD)
        bank.read(7, base_timing.tRCD + base_timing.tBURST)
        assert bank.stats.row_hits == 2


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        with pytest.raises(TimingViolation):
            bank.precharge(base_timing.tRAS - 1)

    def test_precharge_closes_row(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        bank.precharge(base_timing.tRAS)
        assert not bank.is_open

    def test_precharge_while_idle_rejected(self, bank):
        with pytest.raises(TimingViolation, match="idle"):
            bank.precharge(10**9)

    def test_next_act_respects_trp(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        ready = bank.precharge(base_timing.tRAS)
        assert ready == base_timing.tRAS + base_timing.tRP
        assert ready == base_timing.tRC  # tRC = tRAS + tRP

    def test_next_act_respects_trc_for_early_precharge(self, base_timing):
        """With PRAC tRAS (16 ns) < tRP path, tRC still binds."""
        prac = ddr5_prac()
        bank = Bank(0)
        bank.activate(1, 0, prac)
        ready = bank.precharge(prac.tRAS)
        assert ready == max(prac.tRAS + prac.tRP, prac.tRC)

    def test_counter_update_precharge_counted(self, bank, base_timing):
        bank.activate(7, 0, base_timing)
        bank.precharge(base_timing.tRAS, counter_update=True)
        assert bank.stats.counter_update_precharges == 1

    def test_precharge_with_override_timing(self, bank, base_timing):
        """MoPAC-C closes a selected episode with the PRAC tRP."""
        prac = ddr5_prac()
        bank.activate(7, 0, base_timing)
        ready = bank.precharge(base_timing.tRAS, prac)
        assert ready == base_timing.tRAS + prac.tRP


class TestBlocking:
    def test_block_delays_activation(self, bank, base_timing):
        bank.block_until(5000)
        assert bank.earliest_activate() == 5000
        with pytest.raises(TimingViolation):
            bank.activate(1, 4999, base_timing)

    def test_block_is_monotonic(self, bank):
        bank.block_until(5000)
        bank.block_until(1000)
        assert bank.blocked_until == 5000


class TestEpisodeTiming:
    """Per-episode timing is what lets PRAC and MoPAC-C coexist."""

    def test_prac_episode_uses_prac_trcd(self):
        bank = Bank(0)
        prac = ddr5_prac()
        ready = bank.activate(1, 0, prac)
        assert ready == prac.tRCD

    def test_mixed_episodes(self, base_timing):
        """A PRAC episode followed by a baseline episode."""
        bank = Bank(0)
        prac = ddr5_prac()
        bank.activate(1, 0, prac)
        t1 = bank.precharge(bank.earliest_precharge())
        bank.activate(2, t1, base_timing)
        assert bank.earliest_precharge() == t1 + base_timing.tRAS


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["act", "read", "pre"]),
                min_size=1, max_size=40),
       st.booleans())
def test_legal_sequences_never_violate(ops, use_prac):
    """Property: commands issued at their earliest legal time never raise,
    and the bank's open/closed state follows ACT/PRE pairing."""
    timing = ddr5_prac() if use_prac else ddr5_base()
    bank = Bank(0)
    row = 0
    for op in ops:
        if op == "act" and not bank.is_open:
            row += 1
            bank.activate(row, bank.earliest_activate(), timing)
        elif op == "read" and bank.is_open:
            bank.read(row, bank.earliest_column())
        elif op == "pre" and bank.is_open:
            bank.precharge(bank.earliest_precharge())
    assert bank.stats.activations >= bank.stats.precharges
