"""Property-based tests for the PRAC timing derivation.

Randomly perturbed base devices must always yield a PRAC variant that
(a) keeps every constraint positive, (b) preserves the tRC identity,
(c) is monotone — PRAC never makes tRP/tRCD/tRC shorter — and (d) is
rejected cleanly (never a broken TimingSet) when the row cycle cannot
absorb the longer precharge.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import (PRAC_TRC_DELTA, PRAC_TRP_DELTA, TimingSet,
                               ddr5_base, derive_prac)
from repro.units import ns


def perturbed_base(trcd_ns, trp_ns, tras_ns):
    base = ddr5_base()
    return replace(base, name="fuzzed", tRCD=ns(trcd_ns), tRP=ns(trp_ns),
                   tRAS=ns(tras_ns), tRC=ns(tras_ns + trp_ns))


# row cycles long enough for PRAC: tRAS + tRP + 6 > tRP + 22, i.e.
# tRAS > 16 ns — drawn comfortably above so the derivation must succeed
@given(trcd=st.integers(2, 60), trp=st.integers(2, 60),
       tras=st.integers(17, 120))
@settings(max_examples=200)
def test_derived_prac_positive_and_monotone(trcd, trp, tras):
    base = perturbed_base(trcd, trp, tras)
    prac = derive_prac(base)
    # all constraints stay positive (TimingSet.__post_init__ re-checks
    # most, but tRAS and the ALERT windows are not covered there)
    for field in ("tRCD", "tRP", "tRAS", "tRC", "tFAW", "tRRD",
                  "tALERT_NORMAL", "tALERT_RFM"):
        assert getattr(prac, field) > 0, field
    # the tRC identity survives the rebalance
    assert prac.tRC == prac.tRAS + prac.tRP
    # monotone: PRAC only ever inflates the externally visible timings
    assert prac.tRCD >= base.tRCD
    assert prac.tRP >= base.tRP
    assert prac.tRC >= base.tRC
    # and by exactly the documented deltas
    assert prac.tRP - base.tRP == PRAC_TRP_DELTA
    assert prac.tRC - base.tRC == PRAC_TRC_DELTA


@given(trcd=st.integers(2, 60), trp=st.integers(2, 60),
       tras=st.integers(1, 16))
@settings(max_examples=100)
def test_too_short_row_cycle_rejected(trcd, trp, tras):
    base = perturbed_base(trcd, trp, tras)
    with pytest.raises(ValueError, match="too short for PRAC"):
        derive_prac(base)


@given(tras=st.integers(17, 120))
@settings(max_examples=50)
def test_derived_set_constructible(tras):
    # derive_prac's output must pass TimingSet validation end to end
    prac = derive_prac(perturbed_base(14, 14, tras))
    assert isinstance(prac, TimingSet)
    assert prac.row_conflict_read_latency() > 0
