"""Command vocabulary and address value types."""

import pytest

from repro.dram.commands import BankAddress, Command, LineAddress


class TestCommand:
    def test_both_precharges_are_precharges(self):
        assert Command.PRE.is_precharge
        assert Command.PRE_CU.is_precharge

    def test_non_precharges(self):
        for cmd in (Command.ACT, Command.RD, Command.WR, Command.REF,
                    Command.RFM):
            assert not cmd.is_precharge

    def test_column_commands(self):
        assert Command.RD.is_column
        assert Command.WR.is_column
        assert not Command.ACT.is_column

    def test_precu_is_distinct_command(self):
        assert Command.PRE is not Command.PRE_CU
        assert Command.PRE_CU.value == "PREcu"


class TestAddresses:
    def test_bank_address_fields(self):
        addr = BankAddress(1, 2, 3)
        assert (addr.subchannel, addr.bank, addr.row) == (1, 2, 3)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            BankAddress(0, -1, 0)

    def test_line_address_delegation(self):
        line = LineAddress(BankAddress(1, 2, 3), column=9)
        assert line.subchannel == 1
        assert line.bank == 2
        assert line.row == 3
        assert line.column == 9

    def test_addresses_hashable_and_equal(self):
        assert BankAddress(0, 1, 2) == BankAddress(0, 1, 2)
        assert len({BankAddress(0, 1, 2), BankAddress(0, 1, 2)}) == 1
