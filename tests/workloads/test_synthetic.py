"""Synthetic trace generation: calibration and structure."""

import pytest

from repro.config import DRAMConfig
from repro.cpu.trace import trace_mpki
from repro.dram.address import MOPMapper
from repro.workloads.catalog import SPEC_WORKLOADS
from repro.workloads.synthetic import TraceGenerator, generate_trace


@pytest.fixture
def config():
    return DRAMConfig(subchannels=2, banks_per_subchannel=8,
                      rows_per_bank=1024)


class TestMPKICalibration:
    @pytest.mark.parametrize("name", ["add", "mcf", "xalancbmk", "xz"])
    def test_measured_mpki_matches_target(self, config, name):
        spec = SPEC_WORKLOADS[name]
        items = generate_trace(spec, config, accesses=20_000)
        assert trace_mpki(items) == pytest.approx(spec.mpki, rel=0.06)

    def test_stream_gaps_deterministic(self, config):
        spec = SPEC_WORKLOADS["add"]
        items = generate_trace(spec, config, accesses=100)
        assert len({item.gap for item in items}) == 1


class TestStructure:
    def test_stream_produces_sequential_lines(self, config):
        spec = SPEC_WORKLOADS["copy"]
        items = generate_trace(spec, config, accesses=200)
        lines = [item.address // config.line_bytes for item in items]
        sequential = sum(1 for a, b in zip(lines, lines[1:])
                         if b == a + 1)
        assert sequential / len(lines) > 0.9

    def test_random_produces_scattered_lines(self, config):
        spec = SPEC_WORKLOADS["cactuBSSN"]
        items = generate_trace(spec, config, accesses=500)
        lines = [item.address // config.line_bytes for item in items]
        sequential = sum(1 for a, b in zip(lines, lines[1:])
                         if b == a + 1)
        assert sequential / len(lines) < 0.1

    def test_hot_rows_receive_hot_fraction(self, config):
        spec = SPEC_WORKLOADS["xz"]  # hot_fraction 0.30
        gen = TraceGenerator(spec, config, core_id=0)
        hot_lines = {line // config.mop_lines for line in gen._hot_lines}
        hits = 0
        n = 20_000
        for _ in range(n):
            item = gen.next_item()
            line = item.address // config.line_bytes
            if line // config.mop_lines in hot_lines:
                hits += 1
        assert hits / n == pytest.approx(spec.hot_fraction, abs=0.03)

    def test_hot_rows_are_distinct_dram_rows(self, config):
        spec = SPEC_WORKLOADS["parest"]
        gen = TraceGenerator(spec, config, core_id=0)
        mapper = MOPMapper(config)
        rows = {(loc.subchannel, loc.bank, loc.row)
                for loc in (mapper.map_line(line)
                            for line in gen._hot_lines)}
        assert len(rows) == spec.hot_rows

    def test_write_fraction(self, config):
        spec = SPEC_WORKLOADS["mcf"]
        items = generate_trace(spec, config, accesses=10_000)
        writes = sum(item.is_write for item in items)
        assert writes / len(items) == pytest.approx(
            spec.write_fraction, abs=0.02)


class TestDeterminism:
    def test_same_seed_same_trace(self, config):
        spec = SPEC_WORKLOADS["mcf"]
        a = generate_trace(spec, config, 500, core_id=2, seed=9)
        b = generate_trace(spec, config, 500, core_id=2, seed=9)
        assert a == b

    def test_core_id_changes_trace(self, config):
        spec = SPEC_WORKLOADS["mcf"]
        a = generate_trace(spec, config, 500, core_id=0, seed=9)
        b = generate_trace(spec, config, 500, core_id=1, seed=9)
        assert a != b

    def test_cores_use_disjoint_footprints(self, config):
        spec = SPEC_WORKLOADS["add"]
        a = TraceGenerator(spec, config, core_id=0)
        b = TraceGenerator(spec, config, core_id=1)
        assert a.base_line != b.base_line


class TestIteration:
    def test_generator_is_iterable(self, config):
        gen = TraceGenerator(SPEC_WORKLOADS["mcf"], config)
        items = [item for _, item in zip(range(10), gen)]
        assert len(items) == 10

    def test_footprint_clamped_to_capacity(self):
        tiny = DRAMConfig(subchannels=1, banks_per_subchannel=1,
                          rows_per_bank=8)
        gen = TraceGenerator(SPEC_WORKLOADS["mcf"], tiny)
        assert gen.footprint <= 8 * tiny.lines_per_row


class TestBlockDraws:
    """``next_block`` manually inlines the per-item draw helpers, so it
    must be proven equal to ``next_item`` for every catalog workload —
    a drift between the two silently breaks fast-engine bit-identity.
    """

    @pytest.mark.parametrize("name", sorted(SPEC_WORKLOADS))
    def test_block_equals_itemwise_stream(self, config, name):
        spec = SPEC_WORKLOADS[name]
        itemwise = TraceGenerator(spec, config, core_id=1, seed=0xB10C)
        blocked = TraceGenerator(spec, config, core_id=1, seed=0xB10C)
        expected = [itemwise.next_item() for _ in range(700)]
        got = []
        # uneven block sizes cross every internal-state boundary
        for n in (1, 2, 255, 256, 186):
            got.extend(blocked.next_block(n))
        assert [(g, a, w) for g, a, w in got] == \
            [(i.gap, i.address, i.is_write) for i in expected]

    def test_block_then_items_continue_the_same_stream(self, config):
        spec = SPEC_WORKLOADS["mcf"]
        reference = TraceGenerator(spec, config, seed=7)
        mixed = TraceGenerator(spec, config, seed=7)
        expected = [reference.next_item() for _ in range(300)]
        got = list(mixed.next_block(100))
        got += [(i.gap, i.address, i.is_write)
                for i in (mixed.next_item() for _ in range(100))]
        got += list(mixed.next_block(100))
        assert got == [(i.gap, i.address, i.is_write) for i in expected]
