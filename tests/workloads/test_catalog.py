"""Workload catalog: Table 4 coverage and spec validity."""

import pytest

from repro.workloads.catalog import (ALL_WORKLOADS, MIX_PAPER, MIX_WORKLOADS,
                                     SPEC_WORKLOADS, STREAM_NAMES,
                                     WorkloadSpec, get_spec, workload_cores)


class TestCoverage:
    def test_all_table4_single_benchmarks_present(self):
        expected = {"bwaves", "parest", "mcf", "lbm", "fotonik3d",
                    "omnetpp", "roms", "xz", "cactuBSSN", "xalancbmk",
                    "cam4", "blender", "masstree",
                    "add", "triad", "copy", "scale"}
        assert expected == set(SPEC_WORKLOADS) - {"hammer"}

    def test_hammer_stress_workload_present(self):
        spec = SPEC_WORKLOADS["hammer"]
        assert spec.hot_rows > 0
        assert spec.mlp_boost == 1.0  # dependent chases defeat FR-FCFS
        assert spec.paper is None  # not a Table 4 row

    def test_six_mixes(self):
        assert set(MIX_WORKLOADS) == {f"mix{i}" for i in range(1, 7)}
        assert set(MIX_PAPER) == set(MIX_WORKLOADS)

    def test_all_workloads_is_23(self):
        assert len(ALL_WORKLOADS) == 23

    def test_mixes_reference_known_benchmarks(self):
        for members in MIX_WORKLOADS.values():
            assert len(members) == 8
            for member in members:
                assert member in SPEC_WORKLOADS

    def test_stream_names_are_stream_kind(self):
        for name in STREAM_NAMES:
            assert SPEC_WORKLOADS[name].kind == "stream"


class TestSpecValues:
    def test_mpki_matches_paper_column(self):
        for name, spec in SPEC_WORKLOADS.items():
            if name == "hammer":
                continue  # our stress workload, not a Table 4 row
            assert spec.paper is not None
            assert spec.mpki == spec.paper.mpki

    def test_hot_rows_track_act64_column(self):
        """Workloads with a nonzero ACT-64+ column get hot rows."""
        for name in ("parest", "omnetpp", "xz"):
            assert SPEC_WORKLOADS[name].hot_rows > 0
        for name in ("cactuBSSN", "cam4", "add"):
            assert SPEC_WORKLOADS[name].hot_rows == 0

    def test_streams_deterministic_gaps(self):
        for name in STREAM_NAMES:
            assert SPEC_WORKLOADS[name].gap_shape == 0

    def test_streams_high_prefetch(self):
        for name in STREAM_NAMES:
            assert SPEC_WORKLOADS[name].mlp_boost > \
                SPEC_WORKLOADS["mcf"].mlp_boost

    def test_mean_gap(self):
        spec = SPEC_WORKLOADS["add"]  # MPKI 62.5 -> 15 instr between
        assert spec.mean_gap == pytest.approx(15.0)


class TestValidation:
    def test_bad_mpki(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=0, kind="random")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=1, kind="zigzag")

    def test_hot_fraction_needs_rows(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=1, kind="random",
                         hot_fraction=0.1, hot_rows=0)

    def test_bad_stream_weight(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=1, kind="mixed", stream_weight=1.5)


class TestWorkloadCores:
    def test_rate_mode_replicates(self):
        cores = workload_cores("mcf", 8)
        assert len(cores) == 8
        assert all(spec.name == "mcf" for spec in cores)

    def test_mix_mode_uses_table(self):
        cores = workload_cores("mix1", 8)
        assert [spec.name for spec in cores] == list(MIX_WORKLOADS["mix1"])

    def test_fewer_cores_truncates_mix(self):
        cores = workload_cores("mix1", 4)
        assert len(cores) == 4

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_spec("doom")
