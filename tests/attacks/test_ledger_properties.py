"""Property-based invariants of the ground-truth ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.ledger import HammerLedger

ops = st.lists(
    st.tuples(st.sampled_from(["act", "act", "act", "mitigate", "refresh"]),
              st.integers(0, 1), st.integers(0, 63)),
    min_size=1, max_size=300)


def drive(op_list, trh=50):
    ledger = HammerLedger(banks=2, rows=64, trh=trh, refresh_groups=8)
    acts = 0
    for op, bank, row in op_list:
        if op == "act":
            ledger.on_activate(bank, row)
            acts += 1
        elif op == "mitigate":
            ledger.on_mitigation(bank, row)
        else:
            ledger.on_refresh()
    return ledger, acts


@settings(max_examples=50, deadline=None)
@given(ops)
def test_total_activations_conserved(op_list):
    ledger, acts = drive(op_list)
    assert ledger.total_activations == acts


@settings(max_examples=50, deadline=None)
@given(ops)
def test_max_is_high_water_mark(op_list):
    ledger, _ = drive(op_list)
    current_max = max(int(ledger.counts[b].max()) for b in range(2))
    assert ledger.max_count >= current_max


@settings(max_examples=50, deadline=None)
@given(ops)
def test_counts_bounded_by_activations(op_list):
    ledger, acts = drive(op_list)
    assert ledger.max_count <= acts


@settings(max_examples=50, deadline=None)
@given(ops)
def test_verdict_matches_threshold(op_list):
    ledger, _ = drive(op_list, trh=10)
    report = ledger.report()
    assert report.attack_succeeded == (report.max_count > 10)


@settings(max_examples=30, deadline=None)
@given(ops)
def test_full_refresh_round_clears_everything(op_list):
    ledger, _ = drive(op_list)
    for _ in range(8):  # one full group rotation
        ledger.on_refresh()
    assert all(int(ledger.counts[b].sum()) == 0 for b in range(2))
