"""Failure injection: the security verifier must catch weakened designs.

The security-verification suite would be vacuous if it passed everything;
here we deliberately sabotage each design's safety parameter and confirm
the ground-truth ledger flags the break. This is a mutation test for the
verification harness itself.
"""

import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import single_sided, srq_fill
from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import PRACMoatPolicy
from repro.security.csearch import MoPACParams
from repro.security.failure import epsilon_for

GEO = dict(banks=4, rows=1024, refresh_groups=1024)
TRH = 500
ACTS = 120_000


def forged_params(ath_star: int, p: float = 1 / 8) -> MoPACParams:
    """Parameters with a deliberately unsafe ALERT threshold."""
    return MoPACParams(
        trh=TRH, ath=472, effective_acts=472, p=p,
        critical_updates=round(ath_star * p), ath_star=ath_star,
        epsilon=epsilon_for(TRH), undercount_probability=1.0,
    )


class TestSabotagedDesignsAreCaught:
    def test_prac_with_huge_ath_breaks(self):
        policy = PRACMoatPolicy(TRH, **GEO)
        policy.ath = TRH * 3  # ALERT far beyond the threshold
        policy.eth = TRH
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            stop_on_failure=True, **GEO)
        assert result.attack_succeeded

    def test_mopac_c_with_huge_ath_star_breaks(self):
        policy = MoPACCPolicy(TRH, **GEO, rng=random.Random(1),
                              params=forged_params(ath_star=1600))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            stop_on_failure=True, **GEO)
        assert result.attack_succeeded

    def test_mopac_d_without_tardiness_bound_breaks(self):
        """TTH is what stops a buffered row from being hammered forever."""
        policy = MoPACDPolicy(TRH, **GEO, tth=10**9, drain_on_ref=0,
                              rng=random.Random(2),
                              params=forged_params(ath_star=1600))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            stop_on_failure=True, **GEO)
        assert result.attack_succeeded

    def test_mopac_c_with_tiny_p_and_paper_ath_star_breaks(self):
        """Keeping ATH* but sampling far less often than the analysis
        assumed lets rows slip through: p and ATH* must move together."""
        worst = 0
        for seed in range(6):
            policy = MoPACCPolicy(
                TRH, **GEO, rng=random.Random(seed),
                params=forged_params(ath_star=176, p=1 / 256))
            result = run_attack(policy, single_sided(0, 100), ACTS,
                                trh=TRH, stop_on_failure=True, **GEO)
            worst = max(worst, result.ledger.max_count)
        assert worst > TRH


class TestProperlyParameterisedControls:
    """The same designs with honest parameters hold (control group)."""

    def test_mopac_c_control(self):
        policy = MoPACCPolicy(TRH, **GEO, rng=random.Random(1))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            **GEO)
        assert not result.attack_succeeded

    def test_mopac_d_control(self):
        policy = MoPACDPolicy(TRH, **GEO, rng=random.Random(2))
        result = run_attack(policy, srq_fill(0, 500), ACTS, trh=TRH,
                            **GEO)
        assert not result.attack_succeeded
