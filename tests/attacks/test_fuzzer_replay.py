"""Replayability of attack-fuzzer cases from their logged seeds."""

import random

from repro.attacks.fuzzer import fuzz, replay_case
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import BaselinePolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)


def mopac_d():
    return MoPACDPolicy(500, **GEO, rng=random.Random(1))


class TestPerCaseSeeds:
    def test_rows_carry_distinct_case_seeds(self):
        result = fuzz(mopac_d, trh=500, cases=6, acts_per_case=20_000,
                      seed=11, **GEO)
        seeds = [row[2] for row in result.per_case]
        assert len(set(seeds)) == len(seeds)

    def test_explicit_rng_handle_reproduces_campaign(self):
        a = fuzz(mopac_d, trh=500, cases=4, acts_per_case=20_000,
                 rng=random.Random(99), **GEO)
        b = fuzz(mopac_d, trh=500, cases=4, acts_per_case=20_000,
                 rng=random.Random(99), **GEO)
        assert a.per_case == b.per_case

    def test_rng_handle_overrides_seed(self):
        a = fuzz(mopac_d, trh=500, cases=3, acts_per_case=20_000,
                 seed=1, rng=random.Random(42), **GEO)
        b = fuzz(mopac_d, trh=500, cases=3, acts_per_case=20_000,
                 seed=2, rng=random.Random(42), **GEO)
        assert [r[2] for r in a.per_case] == [r[2] for r in b.per_case]


class TestReplay:
    def test_each_logged_case_replays_exactly(self):
        result = fuzz(mopac_d, trh=500, cases=5, acts_per_case=20_000,
                      seed=7, **GEO)
        for description, count, case_seed in result.per_case:
            case, replayed = replay_case(mopac_d, case_seed, trh=500,
                                         acts_per_case=20_000, **GEO)
            assert case.description == description
            assert replayed == count

    def test_replay_reproduces_a_break_without_the_campaign(self):
        campaign = fuzz(lambda: BaselinePolicy(), trh=500, cases=6,
                        acts_per_case=40_000, seed=12, banks=4,
                        rows=1024, refresh_groups=1024)
        assert campaign.broken
        breaking = [row for row in campaign.per_case if row[1] > 500]
        description, count, case_seed = breaking[0]
        case, replayed = replay_case(
            lambda: BaselinePolicy(), case_seed, trh=500,
            acts_per_case=40_000, banks=4, rows=1024,
            refresh_groups=1024)
        assert case.description == description
        assert replayed == count > 500
