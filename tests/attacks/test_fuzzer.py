"""Attack fuzzer."""

import random

import pytest

from repro.attacks.fuzzer import FuzzResult, fuzz, sample_case
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import BaselinePolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)


class TestSampleCase:
    def test_cases_are_reproducible(self):
        a = sample_case(random.Random(7), 4, 1024)
        b = sample_case(random.Random(7), 4, 1024)
        assert a.description == b.description

    def test_case_yields_valid_targets(self):
        rng = random.Random(3)
        for _ in range(30):
            case = sample_case(rng, 4, 1024)
            for _, (bank, row) in zip(range(50), case.factory()):
                assert 0 <= bank < 4
                assert 0 <= row < 1024 + 64  # blacksmith may go +1

    def test_descriptions_vary(self):
        rng = random.Random(0)
        descriptions = {sample_case(rng, 4, 1024).description
                        for _ in range(20)}
        assert len(descriptions) > 5


class TestFuzzCampaign:
    def test_secure_design_survives_fuzzing(self):
        result = fuzz(
            lambda: MoPACDPolicy(500, **GEO, rng=random.Random(1)),
            trh=500, cases=10, acts_per_case=40_000, seed=11)
        assert isinstance(result, FuzzResult)
        assert not result.broken
        assert result.worst_count < 500
        assert len(result.per_case) == 10

    def test_unprotected_design_broken(self):
        result = fuzz(lambda: BaselinePolicy(), trh=500, cases=6,
                      acts_per_case=40_000, refresh_groups=1024, seed=12)
        assert result.broken
        assert result.worst_case != "none"

    def test_deterministic_given_seed(self):
        factory = lambda: MoPACDPolicy(  # noqa: E731
            500, **GEO, rng=random.Random(2))
        a = fuzz(factory, trh=500, cases=4, acts_per_case=20_000, seed=5)
        b = fuzz(factory, trh=500, cases=4, acts_per_case=20_000, seed=5)
        assert a.per_case == b.per_case
