"""Ground-truth hammer ledger."""

import pytest

from repro.attacks.ledger import HammerLedger


def make_ledger(trh=100):
    return HammerLedger(banks=2, rows=64, trh=trh, refresh_groups=8)


class TestCounting:
    def test_counts_accumulate(self):
        ledger = make_ledger()
        for _ in range(5):
            ledger.on_activate(0, 10)
        assert ledger.counts[0][10] == 5
        assert ledger.total_activations == 5

    def test_max_tracked_with_location(self):
        ledger = make_ledger()
        for _ in range(3):
            ledger.on_activate(1, 20)
        ledger.on_activate(0, 5)
        report = ledger.report()
        assert report.max_count == 3
        assert (report.max_bank, report.max_row) == (1, 20)

    def test_banks_independent(self):
        ledger = make_ledger()
        ledger.on_activate(0, 10)
        assert ledger.counts[1][10] == 0


class TestResets:
    def test_mitigation_resets_row(self):
        ledger = make_ledger()
        for _ in range(5):
            ledger.on_activate(0, 10)
        ledger.on_mitigation(0, 10)
        assert ledger.counts[0][10] == 0

    def test_mitigation_does_not_lower_max(self):
        """The max is a high-water mark: a past overshoot stays recorded."""
        ledger = make_ledger(trh=3)
        for _ in range(5):
            ledger.on_activate(0, 10)
        ledger.on_mitigation(0, 10)
        assert ledger.report().max_count == 5
        assert ledger.report().attack_succeeded

    def test_refresh_covers_all_rows_after_full_round(self):
        ledger = make_ledger()
        for row in range(64):
            ledger.on_activate(0, row)
        for _ in range(8):  # 8 groups
            ledger.on_refresh()
        assert int(ledger.counts[0].sum()) == 0

    def test_out_of_range_mitigation_ignored(self):
        ledger = make_ledger()
        ledger.on_mitigation(0, 9999)  # silently ignored


class TestReport:
    def test_attack_succeeds_above_trh(self):
        ledger = make_ledger(trh=4)
        for _ in range(5):
            ledger.on_activate(0, 1)
        assert ledger.report().attack_succeeded

    def test_attack_fails_at_trh(self):
        ledger = make_ledger(trh=5)
        for _ in range(5):
            ledger.on_activate(0, 1)
        assert not ledger.report().attack_succeeded

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            HammerLedger(banks=0, rows=64, trh=100)
