"""End-to-end security verification (threat model, Section 2.1).

Every secure design is run against every attack pattern at maximum legal
speed; the ground-truth ledger must never record a row exceeding T_RH
activations without an intervening mitigation or refresh. The insecure
baselines (no protection, TRR) are shown to break — the paper's
motivation.

These runs use a reduced geometry (4-32 banks, 1K rows) and hundreds of
thousands of activations; the designed bounds (ATH + ABO slippage, or
ATH* + TTH + slippage) are far below T_RH, so the margin these tests
assert is real, not an artefact of scale.
"""

import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import (decoy_hammer, double_sided, half_double,
                                    many_sided, multi_bank_single_row,
                                    single_sided, srq_fill)
from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy
from repro.mitigations.trr import TRRPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
ACTS = 250_000
TRH = 500


def policies():
    yield "prac", lambda: PRACMoatPolicy(TRH, **GEO)
    yield "mopac-c", lambda: MoPACCPolicy(TRH, **GEO,
                                          rng=random.Random(11))
    yield "mopac-d", lambda: MoPACDPolicy(TRH, **GEO,
                                          rng=random.Random(22))
    yield "mopac-d-nup", lambda: MoPACDPolicy(TRH, nup=True, **GEO,
                                              rng=random.Random(33))
    yield "mopac-d-2chip", lambda: MoPACDPolicy(TRH, chips=2, **GEO,
                                                rng=random.Random(44))


def attack_patterns():
    yield "single_sided", lambda: single_sided(0, 100)
    yield "double_sided", lambda: double_sided(0, 100)
    yield "many_sided_24", lambda: many_sided(0, range(100, 124))
    yield "srq_fill", lambda: srq_fill(0, 500)
    yield "decoy", lambda: decoy_hammer(0, 100, decoy_rows=200,
                                        target_fraction=0.6,
                                        rng=random.Random(5))
    yield "half_double", lambda: half_double(0, 100)


@pytest.mark.parametrize("policy_name,policy_factory", list(policies()))
@pytest.mark.parametrize("pattern_name,pattern_factory",
                         list(attack_patterns()))
def test_secure_designs_hold(policy_name, policy_factory, pattern_name,
                             pattern_factory):
    result = run_attack(policy_factory(), pattern_factory(), ACTS,
                        trh=TRH, **GEO)
    assert not result.attack_succeeded, (
        f"{policy_name} broken by {pattern_name}: row "
        f"({result.ledger.max_bank}, {result.ledger.max_row}) reached "
        f"{result.ledger.max_count} > {TRH} activations")


@pytest.mark.parametrize("policy_name,policy_factory", list(policies()))
def test_secure_designs_hold_multibank(policy_name, policy_factory):
    geo = dict(banks=32, rows=1024, refresh_groups=64)
    if policy_name == "prac":
        policy = PRACMoatPolicy(TRH, **geo)
    elif policy_name == "mopac-c":
        policy = MoPACCPolicy(TRH, **geo, rng=random.Random(11))
    elif policy_name == "mopac-d":
        policy = MoPACDPolicy(TRH, **geo, rng=random.Random(22))
    elif policy_name == "mopac-d-nup":
        policy = MoPACDPolicy(TRH, nup=True, **geo, rng=random.Random(33))
    else:
        policy = MoPACDPolicy(TRH, chips=2, **geo, rng=random.Random(44))
    result = run_attack(policy, multi_bank_single_row(range(32), 100),
                        ACTS, trh=TRH, **geo)
    assert not result.attack_succeeded


class TestDesignedBounds:
    """Beyond not failing, the designs respect their analytical bounds."""

    def test_prac_max_near_ath(self):
        result = run_attack(PRACMoatPolicy(TRH, **GEO),
                            single_sided(0, 100), ACTS, trh=TRH, **GEO)
        policy_ath = 472
        slippage_allowance = 40  # ABO window at full ACT rate
        assert result.ledger.max_count <= policy_ath + slippage_allowance

    def test_mopac_d_max_below_ath_star_plus_tth_band(self):
        policy = MoPACDPolicy(TRH, **GEO, rng=random.Random(7))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=TRH,
                            **GEO)
        # ATH* (152) + TTH (32) + sampling noise stays well under T_RH.
        assert result.ledger.max_count < TRH * 0.7

    def test_lower_trh_also_holds(self):
        geo = GEO
        policy = MoPACDPolicy(250, **geo, rng=random.Random(8))
        result = run_attack(policy, double_sided(0, 100), ACTS, trh=250,
                            **geo)
        assert not result.attack_succeeded

    def test_higher_trh_also_holds(self):
        policy = MoPACCPolicy(1000, **GEO, rng=random.Random(9))
        result = run_attack(policy, single_sided(0, 100), ACTS, trh=1000,
                            **GEO)
        assert not result.attack_succeeded


class TestInsecureBaselines:
    """Unprotected DRAM and TRR must break — the paper's motivation."""

    def test_unprotected_fails_fast(self):
        result = run_attack(BaselinePolicy(), single_sided(0, 100),
                            5_000, trh=TRH, stop_on_failure=True, **GEO)
        assert result.attack_succeeded

    # The TRR tests need a long refresh window (1024 groups ~= 4 ms) so
    # that periodic refresh alone cannot save the victim — the same
    # regime real TRRespass attacks operate in.
    TRR_GEO = dict(banks=4, rows=1024, refresh_groups=1024)

    def test_trr_survives_single_sided(self):
        policy = TRRPolicy(banks=4, entries=16, mitigation_threshold=64,
                           refs_per_mitigation=4)
        result = run_attack(policy, single_sided(0, 100), 100_000,
                            trh=TRH, **self.TRR_GEO)
        assert not result.attack_succeeded

    def test_trr_broken_by_many_sided(self):
        """TRRespass: more aggressors than tracker entries (Section 2.3)."""
        policy = TRRPolicy(banks=4, entries=16, mitigation_threshold=64,
                           refs_per_mitigation=4)
        result = run_attack(policy, many_sided(0, range(100, 124)),
                            400_000, trh=TRH, stop_on_failure=True,
                            **self.TRR_GEO)
        assert result.attack_succeeded
