"""Blacksmith-style non-uniform patterns."""

import itertools
import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import blacksmith
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import PRACMoatPolicy
from repro.mitigations.trr import TRRPolicy


def take(gen, n):
    return list(itertools.islice(gen, n))


class TestPatternStructure:
    def test_pairs_bracket_their_victims(self):
        got = take(blacksmith(0, 100, pairs=2, frequencies=(1, 1)), 4)
        assert got == [(0, 99), (0, 101), (0, 103), (0, 105)]

    def test_frequencies_shape_rates(self):
        got = take(blacksmith(0, 100, pairs=2, frequencies=(1, 4),
                              phases=(0, 0)), 4000)
        fast = sum(1 for _, r in got if r in (99, 101))
        slow = sum(1 for _, r in got if r in (103, 105))
        assert fast > 3 * slow

    def test_validation(self):
        with pytest.raises(ValueError):
            blacksmith(0, 100, pairs=0)
        with pytest.raises(ValueError):
            blacksmith(0, 100, pairs=5, frequencies=(1, 2))


class TestAgainstMitigations:
    GEO = dict(banks=4, rows=1024, refresh_groups=1024)
    TRH = 500

    def pattern(self):
        return blacksmith(0, 100, pairs=4, frequencies=(1, 2, 4, 8))

    def test_trr_falls_to_blacksmith(self):
        policy = TRRPolicy(banks=4, entries=4, mitigation_threshold=64,
                           refs_per_mitigation=4)
        result = run_attack(policy, self.pattern(), 400_000, trh=self.TRH,
                            stop_on_failure=True, **self.GEO)
        assert result.attack_succeeded

    def test_prac_defeats_blacksmith(self):
        policy = PRACMoatPolicy(self.TRH, **self.GEO)
        result = run_attack(policy, self.pattern(), 250_000, trh=self.TRH,
                            **self.GEO)
        assert not result.attack_succeeded

    def test_mopac_d_defeats_blacksmith(self):
        policy = MoPACDPolicy(self.TRH, **self.GEO,
                              rng=random.Random(4))
        result = run_attack(policy, self.pattern(), 250_000, trh=self.TRH,
                            **self.GEO)
        assert not result.attack_succeeded
