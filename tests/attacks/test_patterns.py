"""Attack pattern generators."""

import itertools

import pytest

from repro.attacks import patterns


def take(gen, n):
    return list(itertools.islice(gen, n))


class TestSingleSided:
    def test_constant_target(self):
        assert take(patterns.single_sided(2, 7), 5) == [(2, 7)] * 5


class TestDoubleSided:
    def test_alternates_neighbours(self):
        got = take(patterns.double_sided(0, 10), 4)
        assert got == [(0, 9), (0, 11), (0, 9), (0, 11)]

    def test_edge_victim_rejected(self):
        with pytest.raises(ValueError):
            patterns.double_sided(0, 0)


class TestManySided:
    def test_round_robin(self):
        got = take(patterns.many_sided(1, [5, 6, 7]), 6)
        assert got == [(1, 5), (1, 6), (1, 7)] * 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            patterns.many_sided(0, [])


class TestMultiBank:
    def test_cycles_banks_same_row(self):
        got = take(patterns.multi_bank_single_row(range(3), 9), 6)
        assert got == [(0, 9), (1, 9), (2, 9)] * 2

    def test_empty_banks_rejected(self):
        with pytest.raises(ValueError):
            patterns.multi_bank_single_row([], 9)

    def test_tardiness_alias(self):
        a = take(patterns.tardiness_attack(range(4), 3), 8)
        b = take(patterns.multi_bank_single_row(range(4), 3), 8)
        assert a == b


class TestSRQFill:
    def test_unique_rows_cycle(self):
        got = take(patterns.srq_fill(0, 3, start_row=10), 6)
        assert got == [(0, 10), (0, 11), (0, 12)] * 2

    def test_bad_count(self):
        with pytest.raises(ValueError):
            patterns.srq_fill(0, 0)


class TestDecoyHammer:
    def test_target_fraction_respected(self):
        got = take(patterns.decoy_hammer(0, 5, decoy_rows=100,
                                         target_fraction=0.5), 4000)
        hits = sum(1 for _, row in got if row == 5)
        assert hits / len(got) == pytest.approx(0.5, abs=0.05)

    def test_decoys_avoid_target(self):
        got = take(patterns.decoy_hammer(0, 5, decoy_rows=10,
                                         target_fraction=0.1), 1000)
        decoys = {row for _, row in got if row != 5}
        assert all(row >= 15 for row in decoys)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            patterns.decoy_hammer(0, 5, 10, target_fraction=0)


class TestRandomSpray:
    def test_stays_in_bounds(self):
        got = take(patterns.random_spray(4, 32), 500)
        assert all(0 <= b < 4 and 0 <= r < 32 for b, r in got)
