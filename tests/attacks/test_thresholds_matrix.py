"""Security across the full threshold range, including non-paper values.

The headline verification suite runs at T_RH = 500; this matrix confirms
the parameter derivation generalises: every secure design holds at every
threshold the paper sweeps (250-1000) plus an off-menu value (750) whose
parameters come purely from the analytical pipeline, never from a lookup
table.
"""

import random

import pytest

from repro.attacks.harness import run_attack
from repro.attacks.patterns import double_sided
from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.mopac_d import MoPACDPolicy
from repro.mitigations.prac import PRACMoatPolicy

GEO = dict(banks=4, rows=1024, refresh_groups=64)
ACTS = 150_000


@pytest.mark.parametrize("trh", [250, 500, 750, 1000])
class TestThresholdMatrix:
    def test_prac(self, trh):
        result = run_attack(PRACMoatPolicy(trh, **GEO),
                            double_sided(0, 100), ACTS, trh=trh, **GEO)
        assert not result.attack_succeeded

    def test_mopac_c(self, trh):
        policy = MoPACCPolicy(trh, **GEO, rng=random.Random(trh))
        result = run_attack(policy, double_sided(0, 100), ACTS, trh=trh,
                            **GEO)
        assert not result.attack_succeeded

    def test_mopac_d(self, trh):
        policy = MoPACDPolicy(trh, **GEO, rng=random.Random(trh))
        result = run_attack(policy, double_sided(0, 100), ACTS, trh=trh,
                            **GEO)
        assert not result.attack_succeeded


class TestOffMenuParameters:
    def test_trh_750_derivation_is_pure_analysis(self):
        """750 is not in any paper table; the pipeline must still derive
        consistent, conservative parameters."""
        policy = MoPACCPolicy(750, **GEO, rng=random.Random(7))
        assert policy.params.ath_star < 750
        assert policy.params.undercount_probability <= \
            policy.params.epsilon
