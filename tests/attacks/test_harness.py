"""Activation-level harness: pacing, REF injection, ABO servicing."""

import pytest

from repro.attacks.harness import AttackHarness, measure_slowdown, run_attack
from repro.attacks.patterns import multi_bank_single_row, single_sided
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy
from repro.units import ns

GEO = dict(banks=4, rows=256, refresh_groups=16)


class TestPacing:
    def test_single_bank_paced_at_trc(self):
        policy = BaselinePolicy()
        result = run_attack(policy, single_sided(0, 5), 1000, trh=10**9,
                            enable_refresh=False, **GEO)
        # each episode costs one row cycle (46 ns)
        assert result.elapsed_ps == pytest.approx(1000 * ns(46), rel=0.01)

    def test_multi_bank_runs_parallel(self):
        policy = BaselinePolicy()
        serial = run_attack(BaselinePolicy(), single_sided(0, 5), 1000,
                            trh=10**9, enable_refresh=False, **GEO)
        parallel = run_attack(policy,
                              multi_bank_single_row(range(4), 5), 1000,
                              trh=10**9, enable_refresh=False, **GEO)
        assert parallel.elapsed_ps < serial.elapsed_ps

    def test_multi_bank_respects_trrd_and_tfaw(self):
        policy = BaselinePolicy()
        result = run_attack(policy, multi_bank_single_row(range(4), 5),
                            1000, trh=10**9, enable_refresh=False, **GEO)
        # tRRD = 2.5 ns and tFAW = 13.333 ns/4 ACTs are hard floors
        timing = policy.timing
        floor = max(1000 * timing.tRRD, (1000 // 4) * timing.tFAW)
        assert result.elapsed_ps >= floor


class TestRefresh:
    def test_refresh_consumes_time(self):
        with_ref = run_attack(BaselinePolicy(), single_sided(0, 5), 2000,
                              trh=10**9, enable_refresh=True, **GEO)
        without = run_attack(BaselinePolicy(), single_sided(0, 5), 2000,
                             trh=10**9, enable_refresh=False, **GEO)
        assert with_ref.elapsed_ps > without.elapsed_ps

    def test_refresh_resets_ledger_rows(self):
        policy = BaselinePolicy()
        harness = AttackHarness(policy, trh=10**9, enable_refresh=True,
                                **GEO)
        # enough activations to cycle all 16 refresh groups
        harness.run(single_sided(0, 5), 50_000)
        # the hot row got refreshed at least once, so its current count
        # is lower than the total issued
        assert harness.ledger.counts[0][5] < 50_000


class TestAlertServicing:
    def test_prac_alerts_fire_and_stall(self):
        policy = PRACMoatPolicy(500, banks=4, rows=256, refresh_groups=16)
        result = run_attack(policy, single_sided(0, 5), 20_000, trh=500,
                            **GEO)
        assert result.alerts > 0
        # MOAT fires roughly every ATH activations; periodic refresh of
        # the hot row occasionally restarts the climb, so the interval is
        # bounded below by ATH and stretched somewhat above it.
        assert 472 * 0.95 <= result.acts_per_alert <= 472 * 1.5

    def test_alert_consumes_stall_time(self):
        protected = run_attack(
            PRACMoatPolicy(500, banks=4, rows=256, refresh_groups=16),
            single_sided(0, 5), 20_000, trh=500, **GEO)
        base = run_attack(BaselinePolicy(), single_sided(0, 5), 20_000,
                          trh=10**9, **GEO)
        assert protected.elapsed_ps > base.elapsed_ps


class TestMeasureSlowdown:
    def test_baseline_vs_itself_is_zero(self):
        slowdown = measure_slowdown(
            BaselinePolicy(), lambda: single_sided(0, 5), 5000,
            trh=10**9, **GEO)
        assert slowdown == pytest.approx(0.0, abs=1e-9)

    def test_prac_positive_slowdown(self):
        slowdown = measure_slowdown(
            PRACMoatPolicy(500, banks=4, rows=256, refresh_groups=16),
            lambda: single_sided(0, 5), 20_000, trh=500, **GEO)
        assert slowdown > 0.05


class TestStopOnFailure:
    def test_stops_early_when_broken(self):
        result = run_attack(BaselinePolicy(), single_sided(0, 5), 10_000,
                            trh=100, stop_on_failure=True,
                            enable_refresh=False, **GEO)
        assert result.attack_succeeded
        assert result.activations < 10_000
