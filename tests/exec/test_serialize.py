"""JSON round-trip of simulation results."""

import json

import pytest

from repro.exec.serialize import (SCHEMA_VERSION, result_from_dict,
                                  result_to_dict)
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)


@pytest.fixture(scope="module")
def result():
    return run_point(DesignPoint(workload="mcf", design="prac", trh=500,
                                 collect_row_activity=True, **FAST))


@pytest.fixture(scope="module")
def roundtripped(result):
    # through actual JSON text, not just the dict, so type fidelity
    # (int vs float) is part of the contract
    return result_from_dict(json.loads(json.dumps(result_to_dict(result))))


class TestRoundTrip:
    def test_ipcs_exact(self, result, roundtripped):
        assert roundtripped.ipcs == result.ipcs

    def test_core_stats(self, result, roundtripped):
        assert roundtripped.core_stats == result.core_stats

    def test_mc_stats(self, result, roundtripped):
        assert roundtripped.mc_stats == result.mc_stats

    def test_policy_stats(self, result, roundtripped):
        assert roundtripped.policy_stats == result.policy_stats

    def test_elapsed(self, result, roundtripped):
        assert roundtripped.elapsed_ps == result.elapsed_ps

    def test_row_activity(self, result, roundtripped):
        assert roundtripped.row_activity == result.row_activity
        assert roundtripped.row_activity.act64 == result.row_activity.act64

    def test_config_round_trips(self, result, roundtripped):
        assert roundtripped.config == result.config
        assert roundtripped.config.dram.timing == result.config.dram.timing

    def test_stats_snapshot_bit_identical(self, result, roundtripped):
        assert result.stats  # populated by System.run()
        assert roundtripped.stats == result.stats
        assert list(roundtripped.stats) == list(result.stats)

    def test_phase_timings_bit_identical(self, result, roundtripped):
        assert set(result.phases) == {"tracegen", "warmup", "sim"}
        assert roundtripped.phases == result.phases

    def test_derived_metrics_match(self, result, roundtripped):
        assert roundtripped.row_buffer_hit_rate == \
            result.row_buffer_hit_rate
        assert roundtripped.bandwidth_gbps() == result.bandwidth_gbps()
        assert roundtripped.summary() == result.summary()


class TestSchemaGuard:
    def test_future_schema_rejected(self, result):
        data = result_to_dict(result)
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(data)

    def test_missing_schema_rejected(self, result):
        data = result_to_dict(result)
        del data["schema"]
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(data)

    def test_none_row_activity(self):
        result = run_point(DesignPoint(workload="add", design="baseline",
                                       **FAST))
        back = result_from_dict(result_to_dict(result))
        assert back.row_activity is None
