"""Cache maintenance: size-bounded GC, the CLI, concurrent writers."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.exec.cache import ResultCache, main, point_key
from repro.exec.serialize import result_to_dict
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)
POINT = DesignPoint(workload="add", design="baseline", **FAST)


def make_entry(cache_dir, name, size, mtime):
    """Plant a raw cache file (GC never parses entries)."""
    shard = cache_dir / name[:2]
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / f"{name}.json"
    path.write_bytes(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestEntriesAndSize:
    def test_entries_sorted_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "aa11", 10, mtime=300)
        make_entry(tmp_path, "bb22", 20, mtime=100)
        make_entry(tmp_path, "cc33", 30, mtime=200)
        names = [path.stem for _, _, path in cache.entries()]
        assert names == ["bb22", "cc33", "aa11"]

    def test_mtime_ties_break_by_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "bb22", 10, mtime=100)
        make_entry(tmp_path, "aa11", 10, mtime=100)
        names = [path.stem for _, _, path in cache.entries()]
        assert names == ["aa11", "bb22"]

    def test_ns_stamps_order_before_path_tiebreak(self, tmp_path):
        # two writes one nanosecond apart collide after the float
        # st_mtime rounding (1e9 s + 1 ns is not representable as a
        # float); sorting on st_mtime_ns must still see them distinct,
        # so the later write sorts later even though its path sorts
        # earlier
        cache = ResultCache(tmp_path)
        base_ns = 1_000_000_000_000_000_000
        older = make_entry(tmp_path, "bb22", 10, mtime=0)
        newer = make_entry(tmp_path, "aa11", 10, mtime=0)
        os.utime(older, ns=(base_ns + 1, base_ns + 1))
        os.utime(newer, ns=(base_ns + 2, base_ns + 2))
        assert (older.stat().st_mtime == newer.stat().st_mtime)  # float tie
        names = [path.stem for _, _, path in cache.entries()]
        assert names == ["bb22", "aa11"]

    def test_size_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "aa11", 10, mtime=100)
        make_entry(tmp_path, "bb22", 32, mtime=200)
        assert cache.size_bytes() == 42

    def test_empty_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "missing")
        assert cache.entries() == []
        assert cache.size_bytes() == 0


class TestPrune:
    def test_evicts_oldest_until_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        old = make_entry(tmp_path, "aa11", 100, mtime=100)
        mid = make_entry(tmp_path, "bb22", 100, mtime=200)
        new = make_entry(tmp_path, "cc33", 100, mtime=300)
        removed, freed = cache.prune(max_bytes=150)
        assert (removed, freed) == (2, 200)
        assert not old.exists() and not mid.exists()
        assert new.exists()

    def test_equal_mtime_eviction_is_deterministic(self, tmp_path):
        # four entries with identical stamps, budget keeps two: the
        # lexicographically-smallest paths go first, independent of
        # directory scan order
        cache = ResultCache(tmp_path)
        entries = {name: make_entry(tmp_path, name, 50, mtime=100)
                   for name in ("dd44", "bb22", "aa11", "cc33")}
        removed, freed = cache.prune(max_bytes=100)
        assert (removed, freed) == (2, 100)
        assert not entries["aa11"].exists()
        assert not entries["bb22"].exists()
        assert entries["cc33"].exists()
        assert entries["dd44"].exists()

    def test_noop_when_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "aa11", 100, mtime=100)
        assert cache.prune(max_bytes=1000) == (0, 0)
        assert len(cache) == 1

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(4):
            make_entry(tmp_path, f"aa{index}{index}", 10, mtime=index)
        removed, freed = cache.prune(max_bytes=0)
        assert (removed, freed) == (4, 40)
        assert len(cache) == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(max_bytes=-1)

    def test_corrupt_entries_evicted_like_any_other(self, tmp_path):
        # GC never parses documents, so garbage entries are no obstacle
        cache = ResultCache(tmp_path)
        shard = tmp_path / "dd"
        shard.mkdir()
        corrupt = shard / "dd44.json"
        corrupt.write_text("{not json at all")
        os.utime(corrupt, (50, 50))
        keeper = make_entry(tmp_path, "ee55", 16, mtime=500)
        removed, _ = cache.prune(max_bytes=16)
        assert removed == 1
        assert not corrupt.exists() and keeper.exists()

    def test_vanished_entry_counts_as_freed(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        doomed = make_entry(tmp_path, "aa11", 64, mtime=100)
        stale = cache.entries()
        doomed.unlink()  # a concurrent GC beat us to it
        monkeypatch.setattr(cache, "entries", lambda: stale)
        removed, freed = cache.prune(max_bytes=0)
        assert (removed, freed) == (1, 64)


class TestCacheCli:
    def test_stats_output(self, tmp_path, capsys):
        make_entry(tmp_path, "aa11", 10, mtime=100)
        assert main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "10 bytes" in out

    def test_prune_bytes(self, tmp_path, capsys):
        make_entry(tmp_path, "aa11", 100, mtime=100)
        make_entry(tmp_path, "bb22", 100, mtime=200)
        assert main(["--dir", str(tmp_path), "--prune-bytes", "100"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries (100 bytes)" in out

    def test_clear(self, tmp_path, capsys):
        make_entry(tmp_path, "aa11", 10, mtime=100)
        assert main(["--dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out

    def test_negative_prune_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path), "--prune-bytes", "-5"])

    def test_no_directory_is_an_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main([])

    def test_env_directory_fallback(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main([]) == 0
        assert str(tmp_path) in capsys.readouterr().out


_WRITER = """
import json, pathlib, sys
from repro.exec.cache import ResultCache
from repro.exec.serialize import result_from_dict
from repro.sim.runner import DesignPoint

cache_dir, doc_path, point_json, rounds = sys.argv[1:5]
result = result_from_dict(json.loads(pathlib.Path(doc_path).read_text()))
point = DesignPoint(**json.loads(point_json))
cache = ResultCache(cache_dir)
for _ in range(int(rounds)):
    cache.put(point, result)
"""


class TestConcurrentWriters:
    def test_same_key_never_torn(self, tmp_path):
        """Two processes hammering one key: readers never see a torn
        entry (atomic tmpfile + rename), and exactly one file remains.
        """
        import dataclasses

        result = run_point(POINT)
        doc = result_to_dict(result)
        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(doc))
        cache_dir = tmp_path / "cache"
        point_json = json.dumps(dataclasses.asdict(POINT))

        import repro
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env.pop("REPRO_CACHE_SALT", None)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")]))
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(cache_dir),
                 str(doc_path), point_json, "120"],
                env=env, stderr=subprocess.PIPE)
            for _ in range(2)
        ]

        reader = ResultCache(cache_dir)
        while any(w.poll() is None for w in writers):
            entry = reader.get(POINT)
            if entry is not None:
                assert result_to_dict(entry) == doc
        for writer in writers:
            _, stderr = writer.communicate()
            assert writer.returncode == 0, stderr.decode()

        assert reader.counters.corrupt == 0
        final = reader.get(POINT)
        assert final is not None
        assert result_to_dict(final) == doc
        shard = cache_dir / point_key(POINT)[:2]
        assert len(list(shard.glob("*.json"))) == 1
        assert list(shard.glob("*.tmp")) == []


class TestPrunePlan:
    def test_plan_matches_prune_candidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "aa11", 100, mtime=100)
        make_entry(tmp_path, "bb22", 100, mtime=200)
        make_entry(tmp_path, "cc33", 100, mtime=300)
        plan = cache.prune_plan(max_bytes=150)
        assert [path.stem for _, _, path in plan] == ["aa11", "bb22"]
        # planning is read-only
        assert len(cache) == 3
        # the real prune evicts exactly the planned set
        removed, freed = cache.prune(max_bytes=150)
        assert (removed, freed) == (len(plan),
                                    sum(size for _, size, _ in plan))

    def test_plan_oldest_ns_mtime_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        base_ns = 1_000_000_000_000_000_000
        first = make_entry(tmp_path, "bb22", 10, mtime=0)
        second = make_entry(tmp_path, "aa11", 10, mtime=0)
        os.utime(first, ns=(base_ns + 1, base_ns + 1))
        os.utime(second, ns=(base_ns + 2, base_ns + 2))
        plan = cache.prune_plan(max_bytes=10)
        assert [path.stem for _, _, path in plan] == ["bb22"]

    def test_empty_plan_when_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        make_entry(tmp_path, "aa11", 10, mtime=100)
        assert cache.prune_plan(max_bytes=1000) == []

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune_plan(max_bytes=-1)


class TestDryRunCli:
    def test_dry_run_prints_and_deletes_nothing(self, tmp_path, capsys):
        old = make_entry(tmp_path, "aa11", 100, mtime=100)
        new = make_entry(tmp_path, "bb22", 100, mtime=200)
        assert main(["--dir", str(tmp_path), "--prune-bytes", "100",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"would evict {old} (100 bytes)" in out
        assert "bb22" not in out.split("dry run:")[0]
        assert "would prune 1 entries (100 bytes)" in out
        assert old.exists() and new.exists()

    def test_dry_run_lists_oldest_first(self, tmp_path, capsys):
        make_entry(tmp_path, "cc33", 50, mtime=300)
        make_entry(tmp_path, "aa11", 50, mtime=100)
        make_entry(tmp_path, "bb22", 50, mtime=200)
        assert main(["--dir", str(tmp_path), "--prune-bytes", "0",
                     "--dry-run"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("would evict")]
        stems = [pathlib.Path(line.split()[2]).stem for line in lines]
        assert stems == ["aa11", "bb22", "cc33"]

    def test_dry_run_requires_prune_bytes(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path), "--dry-run"])
        assert "--dry-run requires --prune-bytes" \
            in capsys.readouterr().err
