"""Strict REPRO_* environment-knob parsing."""

import pytest

from repro.exec.engine import default_workers, serial_forced
from repro.exec.env import (EnvKnobError, engine_choice, env_choice,
                            env_flag, env_float, env_int)


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("X_KNOB", raising=False)
        assert env_int("X_KNOB") is None
        assert env_int("X_KNOB", default=4) == 4

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("X_KNOB", "  ")
        assert env_int("X_KNOB", default=4) == 4

    def test_parses_with_whitespace(self, monkeypatch):
        monkeypatch.setenv("X_KNOB", " 12 ")
        assert env_int("X_KNOB") == 12

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_below_minimum_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("X_KNOB", bad)
        with pytest.raises(EnvKnobError, match="X_KNOB"):
            env_int("X_KNOB", minimum=1)

    def test_custom_minimum(self, monkeypatch):
        monkeypatch.setenv("X_KNOB", "0")
        assert env_int("X_KNOB", minimum=0) == 0

    @pytest.mark.parametrize("bad", ["two", "1.5", "0x10", "1e3"])
    def test_non_integer_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("X_KNOB", bad)
        with pytest.raises(EnvKnobError, match="X_KNOB"):
            env_int("X_KNOB")

    def test_error_names_value(self, monkeypatch):
        monkeypatch.setenv("X_KNOB", "banana")
        with pytest.raises(EnvKnobError, match="banana"):
            env_int("X_KNOB")

    def test_is_value_error(self, monkeypatch):
        monkeypatch.setenv("X_KNOB", "banana")
        with pytest.raises(ValueError):
            env_int("X_KNOB")


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("X_FLAG", raising=False)
        assert env_flag("X_FLAG") is False
        assert env_flag("X_FLAG", default=True) is True

    @pytest.mark.parametrize("raw", ["1", "true", "YES", "On"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("X_FLAG", raw)
        assert env_flag("X_FLAG") is True

    @pytest.mark.parametrize("raw", ["0", "false", "NO", "Off"])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("X_FLAG", raw)
        assert env_flag("X_FLAG", default=True) is False

    @pytest.mark.parametrize("raw", ["maybe", "2", "yess"])
    def test_garbage_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("X_FLAG", raw)
        with pytest.raises(EnvKnobError, match="X_FLAG"):
            env_flag("X_FLAG")


class TestEnvFloat:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("X_FLOAT", raising=False)
        assert env_float("X_FLOAT") is None
        assert env_float("X_FLOAT", default=1.5) == 1.5

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("X_FLOAT", "  ")
        assert env_float("X_FLOAT", default=2.0) == 2.0

    @pytest.mark.parametrize("raw,value",
                             [(" 0.25 ", 0.25), ("3", 3.0), ("1e2", 100.0)])
    def test_parses_numeric_spellings(self, monkeypatch, raw, value):
        monkeypatch.setenv("X_FLOAT", raw)
        assert env_float("X_FLOAT") == value

    @pytest.mark.parametrize("bad", ["soon", "1.2.3", ""])
    def test_non_number_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("X_FLOAT", bad or "x")
        with pytest.raises(EnvKnobError, match="X_FLOAT"):
            env_float("X_FLOAT")

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
    def test_non_finite_rejected(self, monkeypatch, bad):
        # float() happily parses these; a nan timeout would poison
        # every comparison downstream
        monkeypatch.setenv("X_FLOAT", bad)
        with pytest.raises(EnvKnobError, match="finite"):
            env_float("X_FLOAT")

    def test_inclusive_minimum(self, monkeypatch):
        monkeypatch.setenv("X_FLOAT", "0")
        assert env_float("X_FLOAT", minimum=0.0) == 0.0
        with pytest.raises(EnvKnobError, match=">= 0"):
            monkeypatch.setenv("X_FLOAT", "-0.1")
            env_float("X_FLOAT", minimum=0.0)

    def test_exclusive_minimum(self, monkeypatch):
        monkeypatch.setenv("X_FLOAT", "0")
        with pytest.raises(EnvKnobError, match="> 0"):
            env_float("X_FLOAT", minimum=0.0, exclusive=True)
        monkeypatch.setenv("X_FLOAT", "0.001")
        assert env_float("X_FLOAT", minimum=0.0,
                         exclusive=True) == 0.001


class TestEnvChoice:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("X_CHOICE", raising=False)
        assert env_choice("X_CHOICE", ("a", "b"), "a") == "a"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("X_CHOICE", " B ")
        assert env_choice("X_CHOICE", ("a", "b"), "a") == "b"

    def test_outside_choices_rejected(self, monkeypatch):
        monkeypatch.setenv("X_CHOICE", "c")
        with pytest.raises(EnvKnobError, match="one of a/b"):
            env_choice("X_CHOICE", ("a", "b"), "a")


class TestEngineChoice:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert engine_choice() == "reference"

    def test_fast_selected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert engine_choice() == "fast"

    @pytest.mark.parametrize("bad", ["quick", "turbo", "fastt", "2"])
    def test_unknown_engine_rejected_not_ignored(self, monkeypatch, bad):
        # a typo'd engine must fail loudly, not silently fall back to
        # the reference loop and eat the expected speedup
        monkeypatch.setenv("REPRO_ENGINE", bad)
        with pytest.raises(EnvKnobError, match="REPRO_ENGINE"):
            engine_choice()


class TestEngineKnobs:
    """The historical failure modes stay fixed (see repro.exec.env)."""

    def test_workers_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_workers_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    def test_workers_zero_rejected_not_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(EnvKnobError, match="REPRO_WORKERS"):
            default_workers()

    @pytest.mark.parametrize("bad", ["-2", "many", "3.5"])
    def test_workers_nonsense_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(EnvKnobError):
            default_workers()

    def test_serial_unset_is_parallel(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERIAL", raising=False)
        assert serial_forced() is False

    def test_serial_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL", "1")
        assert serial_forced() is True

    def test_serial_zero_means_parallel(self, monkeypatch):
        # regression: any non-empty string used to count as truthy
        monkeypatch.setenv("REPRO_SERIAL", "0")
        assert serial_forced() is False

    def test_serial_nonsense_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL", "sometimes")
        with pytest.raises(EnvKnobError, match="REPRO_SERIAL"):
            serial_forced()
