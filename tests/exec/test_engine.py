"""Sweep engine: serial/parallel equivalence, caching, observability."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.engine import SweepEngine, run_points, warm
from repro.sim import runner
from repro.sim.runner import DesignPoint, clear_cache, simulate, sweep

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)


def small_points():
    points = []
    for workload in ("add", "mcf"):
        for design in ("prac", "mopac-d"):
            point = DesignPoint(workload=workload, design=design,
                                trh=500, **FAST)
            points.append(point)
            points.append(point.baseline())
    return points


class TestSerialParallelEquivalence:
    def test_identical_results(self):
        points = small_points()
        serial = SweepEngine(parallel=False, cache=None, use_memo=False)
        parallel = SweepEngine(parallel=True, workers=2, cache=None,
                               use_memo=False)
        rs = serial.run(points)
        rp = parallel.run(points)
        assert [r.ipcs for r in rs] == [r.ipcs for r in rp]
        assert [r.elapsed_ps for r in rs] == [r.elapsed_ps for r in rp]
        assert [r.mc_stats for r in rs] == [r.mc_stats for r in rp]

    def test_merge_order_is_input_order(self):
        points = small_points()
        results = SweepEngine(parallel=True, workers=2, cache=None,
                              use_memo=False).run(points)
        for point, result in zip(points, results):
            total = sum(s.instructions for s in result.core_stats)
            assert total == point.instructions * result.config.cores

    def test_env_serial_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL", "1")
        engine = SweepEngine(parallel=None, workers=4, cache=None,
                             use_memo=False)
        assert not engine._run_parallel([(0, None), (1, None)])


class TestDeduplication:
    def test_duplicates_simulated_once(self):
        point = DesignPoint(workload="add", design="baseline", **FAST)
        engine = SweepEngine(parallel=False, cache=None, use_memo=False)
        results = engine.run([point, point, point])
        assert engine.metrics.points == 3
        assert engine.metrics.unique_points == 1
        assert engine.metrics.simulated == 1
        assert results[0] is results[1] is results[2]


class TestCacheBehaviour:
    def test_warm_rerun_simulates_nothing(self, tmp_path):
        points = small_points()
        cold = SweepEngine(parallel=False, cache=ResultCache(tmp_path),
                           use_memo=False)
        cold_results = cold.run(points)
        assert cold.metrics.simulated == len(set(points))
        assert cold.metrics.cache_hits == 0

        clear_cache()
        warm_engine = SweepEngine(parallel=False,
                                  cache=ResultCache(tmp_path),
                                  use_memo=False)
        warm_results = warm_engine.run(points)
        assert warm_engine.metrics.simulated == 0
        assert warm_engine.metrics.cache_hits == len(set(points))
        assert [r.ipcs for r in warm_results] == \
            [r.ipcs for r in cold_results]

    def test_corrupt_entry_resimulated(self, tmp_path):
        point = DesignPoint(workload="add", design="baseline", **FAST)
        cache = ResultCache(tmp_path)
        engine = SweepEngine(parallel=False, cache=cache, use_memo=False)
        engine.run([point])
        cache.path_for(point).write_text("truncated {")
        again = SweepEngine(parallel=False, cache=ResultCache(tmp_path),
                            use_memo=False)
        results = again.run([point])
        assert again.metrics.simulated == 1
        assert results[0].ipcs

    def test_memo_integration(self):
        clear_cache()
        point = DesignPoint(workload="add", design="baseline", **FAST)
        engine = SweepEngine(parallel=False, cache=None, use_memo=True)
        (result,) = engine.run([point])
        # the engine populated the runner memo: simulate() is now free
        assert simulate(point) is result
        # and a second engine run is a memo hit, not a simulation
        rerun = SweepEngine(parallel=False, cache=None, use_memo=True)
        rerun.run([point])
        assert rerun.metrics.memo_hits == 1
        assert rerun.metrics.simulated == 0

    def test_simulate_reads_disk_cache(self, tmp_path, monkeypatch):
        point = DesignPoint(workload="mcf", design="baseline", **FAST)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        first = simulate(point)
        clear_cache()  # memo gone; disk remains
        second = simulate(point)
        assert second is not first
        assert second.ipcs == first.ipcs
        assert runner._disk_cache().counters.hits >= 1


class TestObservability:
    def test_progress_hook_sees_every_unique_point(self, tmp_path):
        points = small_points()
        outcomes = []
        engine = SweepEngine(parallel=False, cache=ResultCache(tmp_path),
                             use_memo=False, progress=outcomes.append)
        engine.run(points)
        assert len(outcomes) == len(set(points))
        assert {o.source for o in outcomes} == {"simulated"}
        assert all(o.wall_s > 0 for o in outcomes)

        hits = []
        rerun = SweepEngine(parallel=False, cache=ResultCache(tmp_path),
                            use_memo=False, progress=hits.append)
        rerun.run(points)
        assert {o.source for o in hits} == {"cache"}

    def test_metrics_accumulate(self):
        point = DesignPoint(workload="add", design="baseline", **FAST)
        engine = SweepEngine(parallel=False, cache=None, use_memo=False)
        engine.run([point])
        engine.run([point])
        assert engine.metrics.points == 2
        assert engine.metrics.simulated == 2
        assert engine.metrics.wall_s > 0
        summary = engine.metrics.summary()
        assert "2 points" in summary

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            SweepEngine(workers=0)


class TestConvenienceAPI:
    def test_run_points(self):
        point = DesignPoint(workload="add", design="baseline", **FAST)
        results = run_points([point], parallel=False, cache=None)
        assert results[0].total_requests > 0

    def test_warm_populates_memo(self):
        clear_cache()
        point = DesignPoint(workload="mcf", design="baseline", **FAST)
        metrics = warm([point], parallel=False, cache=None)
        assert metrics.simulated == 1
        assert runner.memo_get(point) is not None


class TestSweepIntegration:
    def test_sweep_parallel_matches_serial(self):
        clear_cache()
        serial = sweep(["add", "mcf"], "prac", 500, parallel=False, **FAST)
        clear_cache()
        parallel = sweep(["add", "mcf"], "prac", 500, parallel=True,
                         workers=2, **FAST)
        assert serial.slowdowns == parallel.slowdowns
