"""On-disk result cache: keys, persistence, corruption tolerance."""

import json

import pytest

from repro.exec.cache import ResultCache, point_key
from repro.sim.runner import DesignPoint, run_point

FAST = dict(instructions=6_000, rows_per_bank=512, refresh_scale=1 / 256)
POINT = DesignPoint(workload="xalancbmk", design="baseline", **FAST)


@pytest.fixture(scope="module")
def result():
    return run_point(POINT)


class TestPointKey:
    def test_stable_across_equal_points(self):
        a = DesignPoint(workload="mcf", design="prac", **FAST)
        b = DesignPoint(workload="mcf", design="prac", **FAST)
        assert point_key(a) == point_key(b)

    def test_any_field_change_changes_key(self):
        base = DesignPoint(workload="mcf", design="prac", **FAST)
        variants = [
            DesignPoint(workload="add", design="prac", **FAST),
            DesignPoint(workload="mcf", design="mopac-c", **FAST),
            DesignPoint(workload="mcf", design="prac", trh=250, **FAST),
            DesignPoint(workload="mcf", design="prac", seed=1, **FAST),
        ]
        keys = {point_key(p) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_salt_changes_key(self):
        point = DesignPoint(workload="mcf", design="prac", **FAST)
        assert point_key(point, "salt-a") != point_key(point, "salt-b")

    def test_user_salt_env(self, monkeypatch):
        point = DesignPoint(workload="mcf", design="prac", **FAST)
        before = point_key(point)
        monkeypatch.setenv("REPRO_CACHE_SALT", "experiment-7")
        assert point_key(point) != before


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(POINT) is None
        assert cache.counters.misses == 1

    def test_put_get_round_trip(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(POINT, result)
        back = cache.get(POINT)
        assert back is not None
        assert back.ipcs == result.ipcs
        assert back.mc_stats == result.mc_stats
        assert cache.counters.hits == 1
        assert len(cache) == 1

    def test_observability_fields_round_trip(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(POINT, result)
        back = cache.get(POINT)
        assert back.stats == result.stats
        assert back.stats["mc.0.row_hits"] == result.mc_stats[0].row_hits
        assert back.phases == result.phases

    def test_persists_across_instances(self, tmp_path, result):
        ResultCache(tmp_path).put(POINT, result)
        fresh = ResultCache(tmp_path)
        assert fresh.get(POINT).elapsed_ps == result.elapsed_ps

    def test_sharded_layout(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        key = point_key(POINT, cache.salt)
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.exists()

    def test_clear(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(POINT, result)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(POINT) is None


class TestCorruptionTolerance:
    def test_truncated_file_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        blob = path.read_text()
        path.write_text(blob[:len(blob) // 2])
        assert cache.get(POINT) is None
        assert cache.counters.corrupt == 1

    def test_garbage_file_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        path.write_text("not json at all {]")
        assert cache.get(POINT) is None

    def test_wrong_schema_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        data = json.loads(path.read_text())
        data["schema"] = 9999
        path.write_text(json.dumps(data))
        assert cache.get(POINT) is None
        assert cache.counters.corrupt == 1

    def test_structurally_broken_document_is_a_miss(self, tmp_path,
                                                    result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        data = json.loads(path.read_text())
        del data["core_stats"]
        path.write_text(json.dumps(data))
        assert cache.get(POINT) is None

    def test_corrupt_entry_recoverable_by_put(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(POINT, result)
        path.write_text("")
        assert cache.get(POINT) is None
        cache.put(POINT, result)
        assert cache.get(POINT).ipcs == result.ipcs
