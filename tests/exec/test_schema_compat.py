"""Back-compat regression: old cache documents are rejected, not mangled.

``tests/exec/data/result_v1.json`` is a checked-in schema-v1 result
document (the layout before the v2 observability fields). The v2 reader
must refuse it with the versioned :class:`SchemaMismatch` error — never
silently deserialize it into a result missing fields — and the on-disk
cache must treat it as a miss rather than crash.
"""

import json
from pathlib import Path

import pytest

from repro.exec.cache import ResultCache
from repro.exec.serialize import (SCHEMA_VERSION, SchemaMismatch,
                                  result_from_dict)
from repro.sim.runner import DesignPoint

GOLDEN_V1 = Path(__file__).parent / "data" / "result_v1.json"


@pytest.fixture
def v1_doc():
    return json.loads(GOLDEN_V1.read_text())


class TestV1Golden:
    def test_golden_is_schema_one(self, v1_doc):
        assert v1_doc["schema"] == 1
        # the very fields whose introduction bumped the version
        assert "stats" not in v1_doc
        assert "phases" not in v1_doc

    def test_reader_rejects_with_versioned_error(self, v1_doc):
        with pytest.raises(SchemaMismatch) as excinfo:
            result_from_dict(v1_doc)
        assert excinfo.value.found == 1
        assert excinfo.value.expected == SCHEMA_VERSION

    def test_mismatch_is_a_value_error_mentioning_schema(self, v1_doc):
        # older call sites catch ValueError and grep for "schema";
        # the typed exception must stay drop-in compatible
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(v1_doc)

    def test_cache_treats_v1_record_as_miss(self, v1_doc, tmp_path):
        cache = ResultCache(tmp_path)
        key = DesignPoint(workload="mcf", design="mopac-c",
                          instructions=6_000, rows_per_bank=512,
                          refresh_scale=1 / 256)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(v1_doc))
        assert cache.get(key) is None

    def test_missing_schema_key_rejected(self, v1_doc):
        v1_doc.pop("schema")
        with pytest.raises(SchemaMismatch) as excinfo:
            result_from_dict(v1_doc)
        assert excinfo.value.found is None
