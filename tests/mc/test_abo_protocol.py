"""ABO protocol timing (paper Figure 3).

When ALERT asserts, the memory controller may keep operating for 180 ns,
then must stall and issue RFM; with mitigation level 1 the DRAM is
unavailable for 350 ns. Total ALERT wall time: 530 ns (Table 3).
"""

import heapq
import itertools

import pytest

from repro.config import DRAMConfig
from repro.dram.commands import BankAddress, LineAddress
from repro.dram.timing import ddr5_prac
from repro.mc.controller import MemoryController
from repro.mc.request import MemRequest
from repro.mitigations.prac import PRACMoatPolicy
from repro.units import ns


class AboSim:
    def __init__(self, abo_level=1):
        timing = ddr5_prac().scaled_refresh(1 / 256)
        self.config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                                 rows_per_bank=128, timing=timing)
        self.policy = PRACMoatPolicy(500, 4, 128, 32, timing=timing)
        self.policy.abo_level = abo_level
        self.heap, self.seq, self.done = [], itertools.count(), []
        self.mc = MemoryController(
            0, self.config, self.policy,
            lambda t, cb: heapq.heappush(self.heap,
                                         (int(t), next(self.seq), cb)),
            self.done.append)

    def force_alert(self):
        """Put a row at ATH and assert ALERT directly."""
        self.policy.state.update(0, 64, self.policy.ath)
        self.policy._request_alert()

    def submit(self, bank, row, at):
        request = MemRequest(
            0, LineAddress(BankAddress(0, bank, row), 0), at)
        self.mc.enqueue(request, at)
        return request

    def run(self, until=10**12):
        while self.heap and self.heap[0][0] <= until:
            t, _, cb = heapq.heappop(self.heap)
            cb(t)


class TestAboWindow:
    def test_operations_continue_during_180ns_window(self):
        sim = AboSim()
        sim.force_alert()
        # a request right after the ALERT observation still gets served
        # inside the 180 ns window
        early = sim.submit(1, 3, at=0)
        sim.run()
        assert early.completion_ps < ns(180)

    def test_rfm_blocks_banks_for_350ns(self):
        sim = AboSim()
        sim.force_alert()
        sim.submit(1, 3, at=0)  # triggers the alert check path
        sim.run()
        # the RFM window: banks blocked from ~180 ns to ~530 ns
        blocked_until = sim.mc.banks[2].blocked_until
        assert blocked_until >= ns(180 + 350)
        assert blocked_until <= ns(180 + 350) + ns(60)

    def test_request_landing_in_stall_waits(self):
        sim = AboSim()
        sim.force_alert()
        sim.submit(1, 3, at=0)
        late = sim.submit(2, 7, at=ns(200))  # mid-stall
        sim.run()
        assert late.completion_ps >= ns(530)

    def test_mitigation_happens_during_rfm(self):
        sim = AboSim()
        sim.force_alert()
        sim.submit(1, 3, at=0)
        sim.run()
        assert sim.policy.stats.mitigations >= 1
        assert sim.policy.counter_value(0, 64) == 0

    def test_level_two_stalls_twice_as_long(self):
        one = AboSim(abo_level=1)
        two = AboSim(abo_level=2)
        for sim in (one, two):
            sim.force_alert()
            sim.submit(1, 3, at=0)
            sim.run()
        assert two.mc.banks[2].blocked_until - \
            one.mc.banks[2].blocked_until == pytest.approx(ns(350), abs=1)

    def test_alert_counted_once(self):
        sim = AboSim()
        sim.force_alert()
        sim.submit(1, 3, at=0)
        sim.run()
        assert sim.mc.stats.alerts == 1
