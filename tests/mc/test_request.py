"""Memory request value type."""

import pytest

from repro.dram.commands import BankAddress, LineAddress
from repro.mc.request import MemRequest


def make_request(**kw):
    address = LineAddress(BankAddress(1, 2, 3), 4)
    defaults = dict(core=0, address=address, arrival_ps=100)
    defaults.update(kw)
    return MemRequest(**defaults)


class TestMemRequest:
    def test_address_delegation(self):
        request = make_request()
        assert request.subchannel == 1
        assert request.bank == 2
        assert request.row == 3

    def test_latency_after_completion(self):
        request = make_request()
        request.completion_ps = 150
        assert request.latency_ps == 50

    def test_latency_before_completion_rejected(self):
        with pytest.raises(ValueError):
            make_request().latency_ps

    def test_ids_unique(self):
        a, b = make_request(), make_request()
        assert a.request_id != b.request_id

    def test_write_flag(self):
        assert make_request(is_write=True).is_write
