"""Memory controller: FR-FCFS behaviour, timing, REF, ABO, PREcu."""

import heapq
import itertools

import pytest

from repro.config import DRAMConfig
from repro.dram.commands import BankAddress, LineAddress
from repro.dram.timing import ddr5_base, ddr5_prac
from repro.mc.controller import MemoryController
from repro.mc.request import MemRequest
from repro.mitigations.mopac_c import MoPACCPolicy
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy
from repro.units import ns


class MiniSim:
    """A tiny event loop driving one controller."""

    def __init__(self, policy=None, page_policy=None, config=None):
        self.config = config or DRAMConfig(
            subchannels=1, banks_per_subchannel=4, rows_per_bank=128,
            timing=ddr5_base().scaled_refresh(1 / 256))
        self.policy = policy or BaselinePolicy(self.config.timing)
        self.heap = []
        self.seq = itertools.count()
        self.completed = []
        self.mc = MemoryController(
            0, self.config, self.policy, self.schedule,
            self.completed.append, page_policy)

    def schedule(self, time_ps, callback):
        heapq.heappush(self.heap, (int(time_ps), next(self.seq), callback))

    def submit(self, bank, row, at=0, column=0, is_write=False):
        request = MemRequest(0, LineAddress(BankAddress(0, bank, row),
                                            column), at, is_write)
        self.mc.enqueue(request, at)
        return request

    def run(self, until=10**15):
        while self.heap and self.heap[0][0] <= until:
            time_ps, _, callback = heapq.heappop(self.heap)
            callback(time_ps)

    def run_all(self, max_events=100_000):
        for _ in range(max_events):
            if not self.heap:
                return
            time_ps, _, callback = heapq.heappop(self.heap)
            callback(time_ps)
            if len(self.completed) and not any(
                    q for q in self.mc.queues):
                # keep draining timers but stop once quiet
                if not self.heap or self.heap[0][0] > time_ps + 10**8:
                    return


class TestSingleRequestLatency:
    def test_cold_read_latency(self):
        sim = MiniSim()
        request = sim.submit(0, 5, at=0)
        sim.run_all()
        timing = sim.config.timing
        expected = timing.tRCD + timing.tCAS + timing.tBURST
        assert request.completion_ps == expected

    def test_row_hit_is_fast(self):
        sim = MiniSim()
        first = sim.submit(0, 5, at=0)
        sim.run_all()
        hit = sim.submit(0, 5, at=ns(1000), column=1)
        sim.run_all()
        timing = sim.config.timing
        assert hit.latency_ps == timing.tCAS + timing.tBURST
        assert sim.mc.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        sim = MiniSim()
        sim.submit(0, 5, at=0)
        sim.run_all()
        conflict = sim.submit(0, 9, at=ns(1000))
        sim.run_all()
        timing = sim.config.timing
        expected = timing.tRP + timing.tRCD + timing.tCAS + timing.tBURST
        assert conflict.latency_ps == expected
        assert sim.mc.stats.row_conflicts == 1

    def test_prac_conflict_is_55pct_slower(self):
        """Figure 4 reproduced through the full controller."""
        base = MiniSim()
        base.submit(0, 5, at=0)
        base.run_all()
        conflict_base = base.submit(0, 9, at=ns(1000))
        base.run_all()

        config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                            rows_per_bank=128,
                            timing=ddr5_prac().scaled_refresh(1 / 256))
        prac = MiniSim(policy=PRACMoatPolicy(
            500, 4, 128, 32, timing=config.timing), config=config)
        prac.submit(0, 5, at=0)
        prac.run_all()
        conflict_prac = prac.submit(0, 9, at=ns(1000))
        prac.run_all()

        data_portion = base.config.timing.tCAS + base.config.timing.tBURST
        base_core = conflict_base.latency_ps - data_portion
        prac_core = conflict_prac.latency_ps - data_portion
        # PRE + ACT: 28 ns -> 52 ns
        assert base_core == ns(28)
        assert prac_core == ns(52)


class TestFRFCFS:
    def test_hit_served_before_older_conflict(self):
        sim = MiniSim()
        sim.submit(0, 5, at=0)
        sim.run(until=ns(100))
        conflict = sim.submit(0, 9, at=ns(100))
        hit = sim.submit(0, 5, at=ns(101), column=2)
        sim.run_all()
        assert hit.completion_ps < conflict.completion_ps

    def test_banks_progress_in_parallel(self):
        sim = MiniSim()
        a = sim.submit(0, 5, at=0)
        b = sim.submit(1, 5, at=0)
        sim.run_all()
        # second bank must not wait a full row cycle behind the first
        assert abs(a.completion_ps - b.completion_ps) < ns(46)

    def test_fifth_act_respects_tfaw(self):
        sim = MiniSim(config=DRAMConfig(
            subchannels=1, banks_per_subchannel=8, rows_per_bank=128,
            timing=ddr5_base().scaled_refresh(1 / 256)))
        requests = [sim.submit(bank, 5, at=0) for bank in range(5)]
        sim.run_all()
        timing = sim.config.timing
        first_col = min(r.completion_ps for r in requests)
        fifth_col = max(r.completion_ps for r in requests)
        # ACT #5 cannot start before ACT #1 + tFAW
        assert fifth_col - first_col >= timing.tFAW - timing.tRRD


class TestRefresh:
    def test_refresh_closes_open_rows(self):
        sim = MiniSim()
        sim.mc.start()  # arm the periodic REF stream
        sim.submit(0, 5, at=0)
        trefi = sim.config.timing.tREFI
        sim.run(until=trefi + ns(1000))
        assert not sim.mc.banks[0].is_open
        assert sim.mc.stats.refreshes >= 1

    def test_request_after_ref_waits(self):
        sim = MiniSim()
        sim.mc.start()
        trefi = sim.config.timing.tREFI
        request = sim.submit(0, 5, at=trefi + 1)
        sim.run(until=trefi * 2)
        assert request.completion_ps > trefi + sim.config.timing.tRFC


class TestPREcu:
    def test_counter_updates_flow_through_precharge(self):
        config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                            rows_per_bank=128,
                            timing=ddr5_base().scaled_refresh(1 / 256))
        import random
        policy = MoPACCPolicy(500, banks=4, rows=128, p=1.0,
                              refresh_groups=32,
                              rng=random.Random(0))
        sim = MiniSim(policy=policy, config=config)
        sim.submit(0, 5, at=0)
        sim.run_all()
        sim.submit(0, 9, at=ns(500))  # conflict forces the PREcu
        sim.run_all()
        # p = 1.0: every episode selected; increment is 1/p = 1
        assert policy.counter_value(0, 5) == 1
        assert sim.mc.banks[0].stats.counter_update_precharges >= 1


class TestAlertFlow:
    def test_alert_blocks_banks(self):
        policy = PRACMoatPolicy(500, 4, 128, 32)
        config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                            rows_per_bank=128,
                            timing=ddr5_prac().scaled_refresh(1 / 256))
        sim = MiniSim(policy=policy, config=config)
        # Force the tracker over ATH directly, then trigger the check
        # through a normal request cycle.
        policy.state.update(0, 64, policy.ath)
        policy._request_alert()
        request = sim.submit(1, 3, at=0)
        sim.run_all()
        sim.run(until=10**9)
        assert sim.mc.stats.alerts >= 1
        assert policy.stats.mitigations >= 1


class TestActHook:
    def test_hook_sees_activations(self):
        sim = MiniSim()
        seen = []
        sim.mc.act_hook = lambda t, bank, row: seen.append((bank, row))
        sim.submit(2, 7, at=0)
        sim.run_all()
        assert seen == [(2, 7)]


class TestClosePagePolicy:
    def test_close_page_precharges_idle_row(self):
        from repro.mc.pagepolicy import ClosePagePolicy
        sim = MiniSim(page_policy=ClosePagePolicy())
        sim.submit(0, 5, at=0)
        sim.run_all()
        sim.run(until=ns(500))
        assert not sim.mc.banks[0].is_open

    def test_open_page_keeps_row(self):
        sim = MiniSim()
        sim.submit(0, 5, at=0)
        sim.run_all()
        assert sim.mc.banks[0].is_open
