"""Same-bank refresh (DDR5 REFsb) support."""

import pytest

from repro.sim.runner import DesignPoint, simulate, slowdown

FAST = dict(instructions=15_000, rows_per_bank=512, refresh_scale=1 / 256)


class TestRefsbMode:
    def test_unknown_mode_rejected(self):
        from repro.mc.controller import MemoryController
        from repro.config import DRAMConfig
        from repro.mitigations.prac import BaselinePolicy
        with pytest.raises(ValueError, match="refresh_mode"):
            MemoryController(0, DRAMConfig(), BaselinePolicy(),
                             lambda t, cb: None, lambda r: None,
                             refresh_mode="checkerboard")

    def test_same_bank_run_completes(self):
        point = DesignPoint(workload="mcf", design="baseline",
                            refresh_mode="same-bank", **FAST)
        result = simulate(point)
        assert result.total_requests > 0
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_refsb_issues_more_ref_commands(self):
        allb = simulate(DesignPoint(workload="mcf", design="baseline",
                                    **FAST))
        sameb = simulate(DesignPoint(workload="mcf", design="baseline",
                                     refresh_mode="same-bank", **FAST))
        refs_all = sum(s.refreshes for s in allb.mc_stats)
        refs_same = sum(s.refreshes for s in sameb.mc_stats)
        # one REFsb per bank per tREFI vs one REFab per tREFI
        assert refs_same > 8 * refs_all

    def test_refsb_blocks_less(self):
        """Latency-bound work suffers less from REFsb's short stalls."""
        allb = simulate(DesignPoint(workload="mcf", design="baseline",
                                    **FAST))
        sameb = simulate(DesignPoint(workload="mcf", design="baseline",
                                     refresh_mode="same-bank", **FAST))
        # no hard dominance claim at tiny scale — but within a few %
        ratio = sameb.elapsed_ps / allb.elapsed_ps
        assert 0.85 < ratio < 1.1

    def test_mopac_d_under_refsb_still_cheap(self):
        sd = slowdown(DesignPoint(workload="mcf", design="mopac-d",
                                  trh=500, refresh_mode="same-bank",
                                  **FAST))
        assert sd < 0.05

    def test_baseline_projection_keeps_mode(self):
        point = DesignPoint(workload="mcf", design="mopac-d",
                            refresh_mode="same-bank", **FAST)
        assert point.baseline().refresh_mode == "same-bank"


class TestRefsbCadence:
    """Regression: the k-th REFsb must fire at ``(k*tREFI)//banks``.

    Accumulating ``tREFI // banks`` per event drops the integer-division
    remainder every step, so with a tREFI that is not a multiple of the
    bank count the refresh stream drifts ahead of the tREFI cadence.
    """

    def make_controller(self, trefi, banks, events):
        from dataclasses import replace
        from repro.config import DRAMConfig
        from repro.dram.timing import ddr5_base
        from repro.mc.controller import MemoryController
        from repro.mitigations.prac import BaselinePolicy
        timing = replace(ddr5_base(), tREFI=trefi,
                         tREFW=8192 * trefi)
        config = DRAMConfig(subchannels=1, banks_per_subchannel=banks,
                            rows_per_bank=256, timing=timing)
        mc = MemoryController(
            0, config, BaselinePolicy(timing),
            scheduler=lambda t, cb: events.append((t, cb)),
            on_complete=lambda r: None,
            refresh_mode="same-bank")
        mc.start()
        return mc

    def fire_times(self, trefi, banks, count):
        events = []
        self.make_controller(trefi, banks, events)
        times = []
        while len(times) < count:
            when, callback = events.pop()
            times.append(when)
            callback(when)
        return times

    def test_full_rotation_lands_on_trefi_boundary(self):
        trefi, banks = 1_000_003, 4  # tREFI not divisible by banks
        times = self.fire_times(trefi, banks, 8)
        # the 4th REFsb (one full rotation) fires at exactly tREFI;
        # the drifting accumulator gave 4*(tREFI//4) = tREFI - 3
        assert times[3] == trefi
        assert times[7] == 2 * trefi

    def test_no_long_run_drift(self):
        trefi, banks = 999_999, 32
        times = self.fire_times(trefi, banks, 32 * 100)
        assert times[-1] == 100 * trefi
        # every event stays within one remainder of the ideal cadence
        for k, when in enumerate(times, start=1):
            assert abs(when - k * trefi / banks) < banks

    def test_divisible_trefi_unchanged(self):
        trefi, banks = 1_000_000, 4
        times = self.fire_times(trefi, banks, 8)
        assert times == [trefi // 4 * k for k in range(1, 9)]


class TestPerBankRefreshHooks:
    def test_policy_sees_per_bank_refresh(self):
        from repro.mitigations.mopac_d import MoPACDPolicy
        policy = MoPACDPolicy(500, banks=4, rows=512, refresh_groups=32,
                              drain_on_ref=2)
        # buffer entries in bank 0 and bank 1
        for bank in (0, 1):
            for row in (100, 101):
                for i in range(8):
                    policy.on_activate(bank, row, i)
        occ0 = policy.srq_occupancy(0)
        occ1 = policy.srq_occupancy(1)
        policy.on_refresh(1000, bank=0)
        assert policy.srq_occupancy(0) == max(occ0 - 2, 0)
        assert policy.srq_occupancy(1) == occ1  # untouched

    def test_prac_per_bank_counter_refresh(self):
        from repro.mitigations.prac import PRACMoatPolicy
        policy = PRACMoatPolicy(500, banks=2, rows=64, refresh_groups=4)
        policy.state.update(0, 5, 9)
        policy.state.update(1, 5, 9)
        # refresh bank 0's first group (rows 0-15) only
        policy.on_refresh(0, bank=0)
        assert policy.counter_value(0, 5) == 0
        assert policy.counter_value(1, 5) == 9
