"""Property-based stress of the memory controller."""

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMConfig
from repro.dram.commands import BankAddress, LineAddress
from repro.dram.timing import ddr5_base, ddr5_prac
from repro.mc.controller import MemoryController
from repro.mc.request import MemRequest
from repro.mitigations.prac import BaselinePolicy, PRACMoatPolicy


def drive(requests, use_prac=False):
    """Push a request stream through one controller; returns results."""
    timing = (ddr5_prac() if use_prac else ddr5_base()) \
        .scaled_refresh(1 / 256)
    config = DRAMConfig(subchannels=1, banks_per_subchannel=4,
                        rows_per_bank=64, timing=timing)
    policy = (PRACMoatPolicy(500, 4, 64, 8, timing=timing) if use_prac
              else BaselinePolicy(timing))
    heap, seq, done = [], itertools.count(), []
    mc = MemoryController(
        0, config, policy,
        lambda t, cb: heapq.heappush(heap, (int(t), next(seq), cb)),
        done.append)
    mc.start()
    submitted = []
    for arrival, bank, row, is_write in requests:
        request = MemRequest(0, LineAddress(BankAddress(0, bank, row), 0),
                             arrival, is_write)
        submitted.append(request)
        mc.enqueue(request, arrival)
    horizon = (max((a for a, *_ in requests), default=0)
               + 100 * timing.tRC + 10 * timing.tRFC)
    while heap and heap[0][0] <= horizon and len(done) < len(submitted):
        t, _, cb = heapq.heappop(heap)
        cb(t)
    return mc, submitted, done


request_streams = st.lists(
    st.tuples(st.integers(0, 2_000_000),  # arrival ps
              st.integers(0, 3),  # bank
              st.integers(0, 63),  # row
              st.booleans()),  # write
    min_size=1, max_size=60)


@settings(max_examples=30, deadline=None)
@given(request_streams, st.booleans())
def test_every_request_completes(requests, use_prac):
    _, submitted, done = drive(sorted(requests), use_prac)
    assert len(done) == len(submitted)


@settings(max_examples=30, deadline=None)
@given(request_streams)
def test_completion_never_precedes_arrival(requests):
    _, submitted, _ = drive(sorted(requests))
    for request in submitted:
        assert request.completion_ps is not None
        assert request.completion_ps > request.arrival_ps


@settings(max_examples=30, deadline=None)
@given(request_streams)
def test_accounting_identity(requests):
    mc, submitted, _ = drive(sorted(requests))
    stats = mc.stats
    assert stats.requests == len(submitted)
    assert stats.row_hits + stats.row_misses + stats.row_conflicts \
        == stats.requests
    assert stats.reads + stats.writes == stats.requests


@settings(max_examples=20, deadline=None)
@given(request_streams)
def test_prac_never_faster_than_baseline_in_total(requests):
    """PRAC only adds latency; the last completion cannot come earlier.

    Up to one tBURST of slack: the PRAC timing shifts can legally flip
    the commit order of two banks' service passes, chaining the tail
    request's column access behind a different burst in each run.
    """
    requests = sorted(requests)
    _, base_requests, _ = drive(requests, use_prac=False)
    _, prac_requests, _ = drive(requests, use_prac=True)
    base_end = max(r.completion_ps for r in base_requests)
    prac_end = max(r.completion_ps for r in prac_requests)
    slack = ddr5_base().tBURST
    assert prac_end >= base_end - slack
