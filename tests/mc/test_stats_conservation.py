"""MCStats accounting identities and derived accessors."""

import pytest

from repro.mc.controller import MCStats
from repro.sim.runner import DesignPoint, run_point


class TestDerivedAccessors:
    def test_row_hit_rate(self):
        stats = MCStats(row_hits=3, row_misses=1, row_conflicts=0)
        assert stats.classified_accesses == 4
        assert stats.row_buffer_hit_rate == 0.75
        assert stats.row_hit_rate == 0.75

    def test_mean_read_latency_ns(self):
        stats = MCStats(read_latency_ps=90_000, read_serviced=3)
        assert stats.mean_read_latency_ns == 30.0

    def test_empty_stats_read_zero(self):
        stats = MCStats()
        assert stats.row_buffer_hit_rate == 0.0
        assert stats.mean_read_latency_ns == 0.0
        assert stats.mean_latency_ns == 0.0

    def test_derived_dict_matches_properties(self):
        stats = MCStats(requests=2, reads=2, serviced=2, row_hits=1,
                        row_misses=1, total_latency_ps=100_000,
                        read_latency_ps=100_000, read_serviced=2)
        assert stats.derived() == {
            "row_buffer_hit_rate": stats.row_buffer_hit_rate,
            "mean_latency_ns": stats.mean_latency_ns,
            "mean_read_latency_ns": stats.mean_read_latency_ns,
        }


@pytest.fixture(scope="module", params=["mix1", "mcf"])
def stats(request):
    result = run_point(DesignPoint(workload=request.param, design="prac",
                                   trh=500, instructions=4_000,
                                   rows_per_bank=512,
                                   refresh_scale=1 / 256))
    return result.mc_stats


class TestConservation:
    def test_requests_split_into_reads_and_writes(self, stats):
        for mc in stats:
            assert mc.requests == mc.reads + mc.writes
            assert mc.reads > 0 and mc.writes > 0

    def test_every_serviced_request_is_classified_once(self, stats):
        for mc in stats:
            assert mc.serviced == mc.classified_accesses
            # writebacks left in the queue at end-of-run stay unserviced
            assert mc.serviced <= mc.requests

    def test_activations_match_non_hit_accesses(self, stats):
        for mc in stats:
            assert mc.activations == mc.row_misses + mc.row_conflicts

    def test_read_latency_covers_exactly_the_serviced_reads(self, stats):
        for mc in stats:
            assert mc.read_serviced <= mc.reads
            assert mc.read_serviced <= mc.serviced
            if mc.read_serviced:
                assert mc.read_latency_ps > 0
                assert mc.mean_read_latency_ns > 0.0

    def test_rates_are_probabilities(self, stats):
        for mc in stats:
            assert 0.0 <= mc.row_buffer_hit_rate <= 1.0
