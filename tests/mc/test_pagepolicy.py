"""Row-closure policies (Appendix C)."""

import pytest

from repro.mc.pagepolicy import (ClosePagePolicy, OpenPagePolicy,
                                 TimeoutPagePolicy, make_page_policy)
from repro.units import ns


class TestOpenPage:
    def test_always_keeps_open(self):
        policy = OpenPagePolicy()
        assert policy.keep_open(0)
        assert policy.keep_open(5)

    def test_no_timeout(self):
        assert OpenPagePolicy().timeout_ps() is None


class TestClosePage:
    def test_closes_when_no_hits(self):
        policy = ClosePagePolicy()
        assert not policy.keep_open(0)

    def test_keeps_open_for_pending_hits(self):
        assert ClosePagePolicy().keep_open(2)


class TestTimeout:
    def test_timeout_value(self):
        assert TimeoutPagePolicy(100).timeout_ps() == ns(100)

    def test_keeps_open_until_timeout(self):
        assert TimeoutPagePolicy(100).keep_open(0)

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            TimeoutPagePolicy(0)

    def test_name_encodes_ton(self):
        assert TimeoutPagePolicy(200).name == "ton200"


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("open", OpenPagePolicy), ("close", ClosePagePolicy)])
    def test_simple_kinds(self, kind, cls):
        assert isinstance(make_page_policy(kind), cls)

    def test_ton_kind(self):
        policy = make_page_policy("ton150")
        assert isinstance(policy, TimeoutPagePolicy)
        assert policy.timeout_ps() == ns(150)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_page_policy("mystery")
